"""Communication-pattern observatory (``repro.obs.commstats``).

Answers the question the tracer and profiler don't: *who sent how much
to whom, when, and how unevenly*.  A :class:`CommStatsContext` is
discovered via the fabric exactly like faults/sanitize/obs/profile —
off by default, and attaching one never perturbs the run (RunMetrics
stay bit-identical): the hooks never advance simulated time, never
touch a :class:`~repro.sim.monitor.StatRegistry`, and never change any
iteration order.

Two levels of accounting are collected:

* **wire level** — per packet kind (EGR/RTS/RTR/RDMA/ACK), a
  ``(src, dst) -> [msgs, bytes]`` matrix plus a log2 size histogram,
  recorded at NIC injection (so dropped packets are counted, matching
  the always-on ``pkts_sent``/``bytes_sent`` NIC counters exactly);
  packets later dropped in transit are additionally recorded in a
  separate ``dropped`` matrix for fault attribution.
* **blob level** — per engine phase (``r<round>:<pattern>``), a
  ``(src, dst) -> [blobs, bytes]`` matrix recorded at the comm-layer
  API boundary (:meth:`CommLayer.trace_send`), so blob counts/bytes
  telescope exactly to ``RunMetrics.blobs_sent`` and
  ``RunMetrics.payload_bytes_sent``.

The hot path touches only plain dict/list cells — no per-packet object
allocation, no formatting; everything presentation-shaped (the
canonical JSON *comm-doc*, skew analytics, heatmaps, CSV, Prometheus
lines, fingerprints) is folded out of those cells after the run.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "COMM_DOC_KIND",
    "COMM_DOC_VERSION",
    "COMM_BASELINE_FORMAT",
    "EAGER_KINDS",
    "RENDEZVOUS_KINDS",
    "ACK_KINDS",
    "CommStatsContext",
    "analyze_comm",
    "gini",
    "comm_fingerprint",
    "comm_doc_to_json",
    "save_comm_doc",
    "comm_doc_to_csv",
    "render_heatmap",
    "comm_prometheus_lines",
    "format_comm_report",
    "timeline_comm_doc",
    "baseline_entry",
    "make_baseline",
    "baseline_to_json",
    "check_comm_baseline",
]

COMM_DOC_KIND = "repro-comm-doc"
COMM_DOC_VERSION = 1
COMM_BASELINE_FORMAT = "repro-comm-baseline/v1"

#: Wire-kind segmentation (Section III: eager copies vs the
#: RTS->RTR->RDMA rendezvous path vs pure acknowledgements).
EAGER_KINDS = ("EGR",)
RENDEZVOUS_KINDS = ("RTS", "RTR", "RDMA")
ACK_KINDS = ("ACK",)

_HEAT_CHARS = " .:-=+*#%@"
_HEAT_MAX_CELLS = 40


def _phase_key(phase) -> str:
    """Canonical string key for a blob phase.

    Engine sync phases are ``(round, pattern)`` tuples; anything else
    (setup traffic, apps with custom phases) lands under its repr.
    """
    if isinstance(phase, tuple) and len(phase) >= 2:
        return f"r{phase[0]}:{phase[1]}"
    if phase is None:
        return "-"
    return str(phase)


class CommStatsContext:
    """Deterministic traffic-matrix collector, fabric-discovered.

    Usage mirrors :class:`repro.obs.ObsContext`::

        cs = CommStatsContext()
        engine = build_engine(sc, commstats=cs)
        metrics = engine.run()          # bit-identical to a plain run
        doc = cs.comm_doc(meta={"scenario": sc.label()})
    """

    def __init__(self, hotspots: int = 8):
        self.env = None
        self.fabric = None
        self.layer: Optional[str] = None
        self.num_hosts = 0
        self.hotspots = hotspots
        #: kind -> {(src, dst): [msgs, bytes]} — filled at injection.
        self._wire: Dict[str, Dict[Tuple[int, int], List[int]]] = {}
        #: kind -> {(src, dst): [msgs, bytes]} — packets lost in transit.
        self._dropped: Dict[str, Dict[Tuple[int, int], List[int]]] = {}
        #: kind -> {bit_length(wire_bytes): count}.
        self._hist: Dict[str, Dict[int, int]] = {}
        #: phase key -> {(src, dst): [blobs, bytes]} — API-level sends.
        self._blob: Dict[str, Dict[Tuple[int, int], List[int]]] = {}

    # ------------------------------------------------------------------
    # Installation (fabric discovery)
    # ------------------------------------------------------------------
    def install(self, env, fabric, layer: Optional[str] = None
                ) -> "CommStatsContext":
        """Attach to ``fabric``; components discover us from there."""
        self.env = env
        self.fabric = fabric
        self.num_hosts = fabric.num_hosts
        if layer is not None:
            self.layer = layer
        fabric.commstats = self
        return self

    # ------------------------------------------------------------------
    # Hot-path hooks — plain dict/list cells only; no simulated time,
    # no StatRegistry traffic, no ordering influence.
    # ------------------------------------------------------------------
    def on_inject(self, pkt) -> None:
        """Called by :meth:`Nic._inject` after the NIC counters tick."""
        kind = pkt.ptype.name
        nbytes = pkt.wire_bytes
        key = (pkt.src, pkt.dst)
        cells = self._wire.get(kind)
        if cells is None:
            cells = self._wire[kind] = {}
        cell = cells.get(key)
        if cell is None:
            cells[key] = [1, nbytes]
        else:
            cell[0] += 1
            cell[1] += nbytes
        hist = self._hist.get(kind)
        if hist is None:
            hist = self._hist[kind] = {}
        bucket = nbytes.bit_length()
        hist[bucket] = hist.get(bucket, 0) + 1

    def on_drop(self, pkt) -> None:
        """Called when a fault injector vanishes ``pkt`` in transit."""
        kind = pkt.ptype.name
        key = (pkt.src, pkt.dst)
        cells = self._dropped.get(kind)
        if cells is None:
            cells = self._dropped[kind] = {}
        cell = cells.get(key)
        if cell is None:
            cells[key] = [1, pkt.wire_bytes]
        else:
            cell[0] += 1
            cell[1] += pkt.wire_bytes

    def on_blob(self, src: int, dst: int, blob) -> None:
        """Called by :meth:`CommLayer.trace_send` for every API send."""
        key = (src, dst)
        cells = self._blob.get(_phase_key(blob.phase))
        if cells is None:
            cells = self._blob[_phase_key(blob.phase)] = {}
        cell = cells.get(key)
        if cell is None:
            cells[key] = [1, blob.nbytes]
        else:
            cell[0] += 1
            cell[1] += blob.nbytes

    # ------------------------------------------------------------------
    # Snapshot folding
    # ------------------------------------------------------------------
    def comm_doc(self, meta: Optional[dict] = None) -> dict:
        """Fold the cells into the canonical comm-doc (plain dict)."""
        doc_meta = {"layer": self.layer, "hosts": self.num_hosts}
        if meta:
            doc_meta.update(meta)
        return build_comm_doc(
            wire=self._wire,
            dropped=self._dropped,
            hist=self._hist,
            blobs=self._blob,
            meta=doc_meta,
            hotspots=self.hotspots,
        )


# ----------------------------------------------------------------------
# Comm-doc construction
# ----------------------------------------------------------------------
def _matrix_block(cells: Dict[Tuple[int, int], List[int]]) -> dict:
    """One section entry: JSON-safe matrix + telescoping totals."""
    matrix = {}
    msgs = 0
    nbytes = 0
    for key in sorted(cells):
        cell = cells[key]
        matrix[f"{key[0]}>{key[1]}"] = [cell[0], cell[1]]
        msgs += cell[0]
        nbytes += cell[1]
    return {"matrix": matrix, "msgs": msgs, "bytes": nbytes}


def _section(raw: Dict[str, Dict[Tuple[int, int], List[int]]]) -> dict:
    return {name: _matrix_block(raw[name]) for name in sorted(raw)}


def build_comm_doc(
    wire: Dict[str, Dict[Tuple[int, int], List[int]]],
    dropped: Dict[str, Dict[Tuple[int, int], List[int]]],
    hist: Dict[str, Dict[int, int]],
    blobs: Dict[str, Dict[Tuple[int, int], List[int]]],
    meta: dict,
    hotspots: int = 8,
) -> dict:
    """Assemble + fingerprint + analyze a comm-doc from raw cells."""
    doc = {
        "kind": COMM_DOC_KIND,
        "version": COMM_DOC_VERSION,
        "meta": dict(meta),
        "wire": _section(wire),
        "dropped": _section(dropped),
        "hist": {
            kind: {str(b): hist[kind][b] for b in sorted(hist[kind])}
            for kind in sorted(hist)
        },
        "blobs": _section(blobs),
    }
    totals = {
        "wire_msgs": 0, "wire_bytes": 0,
        "dropped_msgs": 0, "dropped_bytes": 0,
        "blob_msgs": 0, "blob_bytes": 0,
        "eager_msgs": 0, "eager_bytes": 0,
        "rendezvous_msgs": 0, "rendezvous_bytes": 0,
        "ack_msgs": 0, "ack_bytes": 0,
    }
    for kind in sorted(doc["wire"]):
        block = doc["wire"][kind]
        totals["wire_msgs"] += block["msgs"]
        totals["wire_bytes"] += block["bytes"]
        if kind in EAGER_KINDS:
            seg = "eager"
        elif kind in RENDEZVOUS_KINDS:
            seg = "rendezvous"
        elif kind in ACK_KINDS:
            seg = "ack"
        else:
            seg = None
        if seg is not None:
            totals[f"{seg}_msgs"] += block["msgs"]
            totals[f"{seg}_bytes"] += block["bytes"]
    for kind in sorted(doc["dropped"]):
        totals["dropped_msgs"] += doc["dropped"][kind]["msgs"]
        totals["dropped_bytes"] += doc["dropped"][kind]["bytes"]
    for phase in sorted(doc["blobs"]):
        totals["blob_msgs"] += doc["blobs"][phase]["msgs"]
        totals["blob_bytes"] += doc["blobs"][phase]["bytes"]
    doc["totals"] = totals
    doc["fingerprint"] = comm_fingerprint(doc)
    doc["analysis"] = analyze_comm(doc, hotspots=hotspots)
    return doc


def comm_fingerprint(doc: dict) -> str:
    """16-hex matrix hash over the deterministic sections.

    Covers ``wire``/``dropped``/``hist``/``blobs`` (canonical JSON) —
    *not* ``meta`` (carries labels) or ``analysis`` (derived floats).
    """
    body = {
        "wire": doc.get("wire", {}),
        "dropped": doc.get("dropped", {}),
        "hist": doc.get("hist", {}),
        "blobs": doc.get("blobs", {}),
    }
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Skew analytics
# ----------------------------------------------------------------------
def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a load distribution (0 = even, →1 = skewed).

    Computed over the sorted values, so the reduction order — and hence
    the bits of the result — is deterministic.
    """
    vals = sorted(float(v) for v in values)
    n = len(vals)
    if n == 0:
        return 0.0
    total = math.fsum(vals)
    if total == 0.0:
        return 0.0
    weighted = math.fsum(i * v for i, v in enumerate(vals, start=1))
    return (2.0 * weighted / (n * total)) - (n + 1.0) / n


def _aggregate_links(section: dict) -> Dict[str, List[int]]:
    """Sum a doc section's matrices across kinds: link -> [msgs, bytes]."""
    links: Dict[str, List[int]] = {}
    for kind in sorted(section):
        matrix = section[kind]["matrix"]
        for link in sorted(matrix):
            cell = matrix[link]
            agg = links.get(link)
            if agg is None:
                links[link] = [cell[0], cell[1]]
            else:
                agg[0] += cell[0]
                agg[1] += cell[1]
    return links


def analyze_comm(doc: dict, hotspots: int = 8) -> dict:
    """Load-imbalance and skew analytics over a comm-doc.

    Wire matrices drive the spatial metrics when present; a blob-only
    doc (e.g. reconstructed from an obs timeline) falls back to the
    blob matrices.  The per-round timeline always comes from blobs —
    the wire level has no round attribution.
    """
    section = doc.get("wire") or {}
    source = "wire"
    if not section:
        section = doc.get("blobs") or {}
        source = "blobs"
    links = _aggregate_links(section)
    hosts = int(doc.get("meta", {}).get("hosts") or 0)
    if hosts <= 0:
        top = 0
        for link in sorted(links):
            s, d = link.split(">")
            top = max(top, int(s) + 1, int(d) + 1)
        hosts = top
    out_bytes = [0] * hosts
    in_bytes = [0] * hosts
    total_bytes = 0
    for link in sorted(links):
        s, d = link.split(">")
        nbytes = links[link][1]
        out_bytes[int(s)] += nbytes
        in_bytes[int(d)] += nbytes
        total_bytes += nbytes

    def _imbalance(loads: List[int]) -> Tuple[float, float]:
        if not loads:
            return 0.0, 0.0
        mean = math.fsum(float(v) for v in loads) / len(loads)
        if mean == 0.0:
            return 0.0, 0.0
        return max(loads) / mean, gini(loads)

    out_ratio, out_gini = _imbalance(out_bytes)
    in_ratio, in_gini = _imbalance(in_bytes)

    # Hotspot links: by bytes desc, then link name for determinism.
    ranked = sorted(
        sorted(links), key=lambda lk: (-links[lk][1], lk)
    )[:hotspots]
    hot = [
        {
            "link": lk,
            "msgs": links[lk][0],
            "bytes": links[lk][1],
            "share": (links[lk][1] / total_bytes) if total_bytes else 0.0,
        }
        for lk in ranked
    ]

    # Per-round comm-volume timeline from the blob phases.
    rounds = []
    blobs = doc.get("blobs") or {}
    for phase in sorted(blobs):
        block = blobs[phase]
        row = {"phase": phase, "msgs": block["msgs"],
               "bytes": block["bytes"]}
        if phase.startswith("r") and ":" in phase:
            head, pattern = phase.split(":", 1)
            try:
                row["round"] = int(head[1:])
                row["pattern"] = pattern
            except ValueError:
                pass
        rounds.append(row)
    rounds.sort(key=lambda r: (r.get("round", -1), r["phase"]))

    totals = doc.get("totals", {})
    phases = {
        "eager": {"msgs": totals.get("eager_msgs", 0),
                  "bytes": totals.get("eager_bytes", 0)},
        "rendezvous": {"msgs": totals.get("rendezvous_msgs", 0),
                       "bytes": totals.get("rendezvous_bytes", 0)},
        "ack": {"msgs": totals.get("ack_msgs", 0),
                "bytes": totals.get("ack_bytes", 0)},
    }
    return {
        "source": source,
        "per_host": {"out_bytes": out_bytes, "in_bytes": in_bytes},
        "imbalance": {
            "out_max_over_mean": out_ratio,
            "out_gini": out_gini,
            "in_max_over_mean": in_ratio,
            "in_gini": in_gini,
        },
        "hotspots": hot,
        "rounds": rounds,
        "phases": phases,
    }


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def comm_doc_to_json(doc: dict) -> str:
    """Canonical byte-stable JSON rendering (committed-file form)."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def _atomic_text(path: str, text: str) -> str:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def save_comm_doc(path: str, doc: dict) -> str:
    """Write the comm-doc atomically (temp file + ``os.replace``)."""
    return _atomic_text(path, comm_doc_to_json(doc))


def comm_doc_to_csv(doc: dict) -> str:
    """Flat CSV: one row per (section, kind-or-phase, src, dst) cell."""
    lines = ["section,kind,src,dst,msgs,bytes"]
    for section in ("wire", "dropped", "blobs"):
        data = doc.get(section) or {}
        for kind in sorted(data):
            matrix = data[kind]["matrix"]
            for link in sorted(matrix):
                s, d = link.split(">")
                cell = matrix[link]
                lines.append(
                    f"{section},{kind},{s},{d},{cell[0]},{cell[1]}"
                )
    return "\n".join(lines) + "\n"


def render_heatmap(doc: dict, source: str = "auto") -> str:
    """ASCII src×dst byte heatmap (log-shaded, terminal-sized).

    ``source`` picks the section ("wire", "blobs", or "auto" = wire
    when non-empty else blobs).  Hosts collapse into at most
    40 buckets so a 128-host matrix still fits on a screen.
    """
    if source == "auto":
        section = doc.get("wire") or doc.get("blobs") or {}
    else:
        section = doc.get(source) or {}
    links = _aggregate_links(section)
    hosts = int(doc.get("meta", {}).get("hosts") or 0)
    if hosts <= 0:
        for link in sorted(links):
            s, d = link.split(">")
            hosts = max(hosts, int(s) + 1, int(d) + 1)
    if hosts <= 0:
        return "(no traffic)"
    group = max(1, -(-hosts // _HEAT_MAX_CELLS))  # ceil division
    cells = -(-hosts // group)
    grid = [[0] * cells for _ in range(cells)]
    for link in sorted(links):
        s, d = link.split(">")
        grid[int(s) // group][int(d) // group] += links[link][1]
    peak = max(max(row) for row in grid)
    lines = []
    unit = f"{group} host" + ("s" if group > 1 else "")
    lines.append(
        f"src\\dst heatmap — bytes per cell ({unit}/cell, "
        f"log shade '{_HEAT_CHARS}', peak {peak})"
    )
    header = "     " + "".join(f"{c % 10}" for c in range(cells))
    lines.append(header)
    denom = math.log(peak + 1.0) if peak > 0 else 1.0
    top = len(_HEAT_CHARS) - 1
    for r in range(cells):
        row = []
        for c in range(cells):
            v = grid[r][c]
            if v <= 0:
                row.append(_HEAT_CHARS[0])
            else:
                level = 1 + int((top - 1) * math.log(v + 1.0) / denom)
                row.append(_HEAT_CHARS[min(level, top)])
        lines.append(f"{r * group:4d} " + "".join(row))
    return "\n".join(lines)


def comm_prometheus_lines(doc: dict) -> List[str]:
    """Prometheus text-format lines for a comm-doc.

    Families are always emitted (HELP/TYPE) with an explicit 0-valued
    unlabeled sample when a family has no series, so scrapers see
    registered counters even for zero-message runs.
    """
    lines: List[str] = []

    def family(name: str, help_text: str, samples: List[str]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        if samples:
            lines.extend(samples)
        else:
            lines.append(f"{name} 0")

    def section_samples(section: dict, name: str, col: int) -> List[str]:
        out = []
        for kind in sorted(section):
            matrix = section[kind]["matrix"]
            for link in sorted(matrix):
                s, d = link.split(">")
                out.append(
                    f'{name}{{kind="{kind}",src="{s}",dst="{d}"}} '
                    f"{matrix[link][col]}"
                )
        return out

    wire = doc.get("wire") or {}
    dropped = doc.get("dropped") or {}
    blobs = doc.get("blobs") or {}
    family("repro_comm_messages_total",
           "Wire packets injected per (kind, src, dst).",
           section_samples(wire, "repro_comm_messages_total", 0))
    family("repro_comm_bytes_total",
           "Wire bytes injected per (kind, src, dst).",
           section_samples(wire, "repro_comm_bytes_total", 1))
    family("repro_comm_dropped_bytes_total",
           "Wire bytes lost in transit per (kind, src, dst).",
           section_samples(dropped, "repro_comm_dropped_bytes_total", 1))
    family("repro_comm_blob_bytes_total",
           "API-level payload bytes per (phase, src, dst).",
           [
               line for phase in sorted(blobs)
               for line in (
                   f'repro_comm_blob_bytes_total{{phase="{phase}",'
                   f'src="{link.split(">")[0]}",'
                   f'dst="{link.split(">")[1]}"}} '
                   f'{blobs[phase]["matrix"][link][1]}'
                   for link in sorted(blobs[phase]["matrix"])
               )
           ])
    return lines


def _fmt_bytes(n: int) -> str:
    v = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if v < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{int(v)} B"
            return f"{v:.1f} {unit}"
        v /= 1024.0
    return f"{int(n)} B"


def format_comm_report(doc: dict, heatmap: bool = True) -> str:
    """Human-readable comm report (CLI ``repro commstats`` and
    ``repro explain --comm``)."""
    meta = doc.get("meta", {})
    totals = doc.get("totals", {})
    analysis = doc.get("analysis") or analyze_comm(doc)
    lines = []
    label = meta.get("scenario") or meta.get("source") or ""
    head = (f"communication patterns — layer {meta.get('layer')}, "
            f"{meta.get('hosts')} hosts")
    if label:
        head += f" ({label})"
    lines.append(head)
    if totals.get("wire_msgs"):
        lines.append(
            f"wire    : {totals['wire_msgs']} pkts, "
            f"{_fmt_bytes(totals['wire_bytes'])}  "
            f"[eager {_fmt_bytes(totals['eager_bytes'])} | "
            f"rendezvous {_fmt_bytes(totals['rendezvous_bytes'])} | "
            f"ack {_fmt_bytes(totals['ack_bytes'])}]"
        )
    lines.append(
        f"blobs   : {totals.get('blob_msgs', 0)} sends, "
        f"{_fmt_bytes(totals.get('blob_bytes', 0))} across "
        f"{len(doc.get('blobs') or {})} phases"
    )
    if totals.get("dropped_msgs"):
        lines.append(
            f"dropped : {totals['dropped_msgs']} pkts, "
            f"{_fmt_bytes(totals['dropped_bytes'])}"
        )
    imb = analysis["imbalance"]
    lines.append(
        f"skew    : out max/mean {imb['out_max_over_mean']:.3f} "
        f"(gini {imb['out_gini']:.3f}), "
        f"in max/mean {imb['in_max_over_mean']:.3f} "
        f"(gini {imb['in_gini']:.3f})  [{analysis['source']} bytes]"
    )
    if analysis["hotspots"]:
        lines.append("hotspot links (by bytes):")
        for h in analysis["hotspots"]:
            lines.append(
                f"  {h['link']:>9}  {h['msgs']:8d} msgs  "
                f"{_fmt_bytes(h['bytes']):>10}  ({h['share'] * 100:.1f}%)"
            )
    if analysis["rounds"]:
        lines.append("per-round volume:")
        lines.append(f"  {'phase':>12} {'msgs':>8} {'bytes':>12}")
        for r in analysis["rounds"]:
            lines.append(
                f"  {r['phase']:>12} {r['msgs']:8d} {r['bytes']:12d}"
            )
    hist = doc.get("hist") or {}
    for kind in sorted(hist):
        buckets = hist[kind]
        parts = [
            f"2^{int(b) - 1}..2^{b}:{buckets[b]}"
            for b in sorted(buckets, key=int)
        ]
        lines.append(f"size hist [{kind}]: " + "  ".join(parts))
    if heatmap:
        lines.append(render_heatmap(doc))
    lines.append(f"fingerprint: {doc.get('fingerprint')}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Timeline reconstruction (repro explain --comm)
# ----------------------------------------------------------------------
def timeline_comm_doc(timeline: dict) -> dict:
    """Rebuild a blob-level comm-doc from an obs timeline.

    Every traced message starts with an ``api`` event whose args carry
    ``{dst, bytes, round, pattern}``; the trace id carries
    ``layer:src>dst:n``.  Probe-layer aggregate frames (args
    ``kind="aggregate"``) are wire artifacts whose member blobs are
    traced separately, so they are skipped to avoid double counting.
    No wire matrices can be recovered (the timeline has per-message,
    not per-packet, granularity), so analytics fall back to blob bytes.
    """
    from repro.obs.critical_path import build_timelines

    blobs: Dict[str, Dict[Tuple[int, int], List[int]]] = {}
    layers = []
    hosts = 0
    for tl in build_timelines(timeline):
        args = tl.first_args
        if args.get("kind") == "aggregate":
            continue
        if "bytes" not in args:
            continue
        try:
            layer, rest = tl.trace.split(":", 1)
            link, _seq = rest.rsplit(":", 1)
            src_s, dst_s = link.split(">")
            src, dst = int(src_s), int(dst_s)
        except ValueError:
            continue
        if layer not in layers:
            layers.append(layer)
        hosts = max(hosts, src + 1, dst + 1)
        if "round" in args and "pattern" in args:
            phase = f"r{args['round']}:{args['pattern']}"
        else:
            phase = "-"
        cells = blobs.setdefault(phase, {})
        cell = cells.get((src, dst))
        if cell is None:
            cells[(src, dst)] = [1, int(args["bytes"])]
        else:
            cell[0] += 1
            cell[1] += int(args["bytes"])
    meta_hosts = (timeline.get("meta") or {}).get("hosts")
    meta = {
        "layer": ",".join(layers) if layers else None,
        "hosts": int(meta_hosts) if meta_hosts else hosts,
        "source": "timeline",
    }
    return build_comm_doc(wire={}, dropped={}, hist={}, blobs=blobs,
                          meta=meta)


# ----------------------------------------------------------------------
# Baseline (COMM_BASELINE.json) — per-scenario comm fingerprints
# ----------------------------------------------------------------------
def baseline_entry(doc: dict) -> dict:
    """The drift-gated summary of one scenario's comm-doc."""
    totals = doc["totals"]
    return {
        "wire_msgs": totals["wire_msgs"],
        "wire_bytes": totals["wire_bytes"],
        "blob_msgs": totals["blob_msgs"],
        "blob_bytes": totals["blob_bytes"],
        "eager_bytes": totals["eager_bytes"],
        "rendezvous_bytes": totals["rendezvous_bytes"],
        "fingerprint": doc["fingerprint"],
    }


def make_baseline(entries: Dict[str, dict]) -> dict:
    return {
        "format": COMM_BASELINE_FORMAT,
        "scenarios": {label: dict(entries[label])
                      for label in sorted(entries)},
    }


def baseline_to_json(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def check_comm_baseline(fresh: Dict[str, dict], committed: dict
                        ) -> List[str]:
    """Compare freshly measured entries against the committed baseline.

    Returns human-readable drift messages (empty = gate passes).  Any
    mismatch means communication volume changed: either the change is a
    bug, or the baseline must be regenerated *deliberately* with
    ``repro commstats --canonical --write-baseline``.
    """
    problems: List[str] = []
    if committed.get("format") != COMM_BASELINE_FORMAT:
        problems.append(
            f"baseline format {committed.get('format')!r} != "
            f"{COMM_BASELINE_FORMAT!r}"
        )
        return problems
    want = committed.get("scenarios", {})
    for label in sorted(fresh):
        if label not in want:
            problems.append(f"{label}: missing from baseline")
            continue
        for field in sorted(fresh[label]):
            got, exp = fresh[label][field], want[label].get(field)
            if got != exp:
                problems.append(
                    f"{label}: {field} drifted — baseline {exp!r}, "
                    f"measured {got!r}"
                )
    for label in sorted(want):
        if label not in fresh:
            problems.append(f"{label}: stale baseline entry (not measured)")
    return problems
