"""Format validators for the observability exports (stdlib only).

Used by the CI observability leg and ``repro explain --check``:
each validator returns a list of human-readable problems (empty list
means the document is well-formed).  These are schema/format checks,
not semantic ones — the semantic invariants (stage sums telescoping to
latency, bit-identical metrics) live in the test suite.
"""

from __future__ import annotations

import re
from typing import List

from repro.obs.context import STAGES

__all__ = [
    "validate_timeline",
    "validate_chrome_trace",
    "validate_prometheus",
    "validate_collapsed",
    "validate_profile_doc",
    "validate_comm_doc",
]

_KNOWN_STAGES = frozenset(STAGES)
_CHROME_PHASES = frozenset("XisfCMbEnB")
_PROM_METRIC = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+"
    r"(?P<value>[-+]?(?:\d+\.?\d*(?:[eE][-+]?\d+)?|\d*\.\d+(?:[eE][-+]?\d+)?|NaN|Inf|-Inf))$"
)
_PROM_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def validate_timeline(doc) -> List[str]:
    """Check a JSON timeline document (`ObsContext.as_timeline` shape)."""
    errs: List[str] = []
    if not isinstance(doc, dict):
        return ["timeline is not a JSON object"]
    if doc.get("kind") != "repro-obs-timeline":
        errs.append(f"kind is {doc.get('kind')!r}, expected 'repro-obs-timeline'")
    if doc.get("version") != 1:
        errs.append(f"unsupported version {doc.get('version')!r}")
    if doc.get("columns") != ["trace", "stage", "host", "t", "args"]:
        errs.append("columns do not match the v1 event row layout")
    events = doc.get("events")
    if not isinstance(events, list):
        errs.append("events is not a list")
        events = []
    last_t = None
    for i, row in enumerate(events):
        if not (isinstance(row, list) and len(row) == 5):
            errs.append(f"event {i}: not a 5-column row")
            continue
        trace, stage, host, t, args = row
        if not (isinstance(trace, str) and trace):
            errs.append(f"event {i}: bad trace id {trace!r}")
        if stage not in _KNOWN_STAGES:
            errs.append(f"event {i}: unknown stage {stage!r}")
        if not isinstance(host, int):
            errs.append(f"event {i}: host is not an int")
        if not isinstance(t, (int, float)):
            errs.append(f"event {i}: timestamp is not a number")
        elif last_t is not None and t < last_t:
            errs.append(f"event {i}: timestamps go backwards ({t} < {last_t})")
        else:
            last_t = t
        if not isinstance(args, dict):
            errs.append(f"event {i}: args is not an object")
    for j, s in enumerate(doc.get("samples", []) or []):
        if not isinstance(s, dict):
            errs.append(f"sample {j}: not an object")
            continue
        for key in ("probe", "host", "times", "values"):
            if key not in s:
                errs.append(f"sample {j}: missing {key!r}")
        if len(s.get("times", [])) != len(s.get("values", [])):
            errs.append(f"sample {j}: times/values length mismatch")
    for k, row in enumerate(doc.get("stalls", []) or []):
        if not (isinstance(row, list) and len(row) == 4):
            errs.append(f"stall {k}: not a 4-column row")
            continue
        _host, _kind, start, end = row
        if not (isinstance(start, (int, float)) and isinstance(end, (int, float))):
            errs.append(f"stall {k}: non-numeric interval")
        elif end <= start:
            errs.append(f"stall {k}: empty or negative interval")
    return errs


def validate_chrome_trace(doc) -> List[str]:
    """Check Chrome trace-event JSON, including flow-event pairing."""
    errs: List[str] = []
    if not isinstance(doc, dict):
        return ["trace is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    flow_starts = {}
    flow_ends = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errs.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _CHROME_PHASES:
            errs.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            errs.append(f"event {i}: ph={ph} missing numeric ts")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            errs.append(f"event {i}: X span missing numeric dur")
        if ph in ("s", "f"):
            if "id" not in ev:
                errs.append(f"event {i}: flow event missing id")
                continue
            bucket = flow_starts if ph == "s" else flow_ends
            if ev["id"] in bucket:
                errs.append(f"event {i}: duplicate flow {ph!r} id {ev['id']}")
            bucket[ev["id"]] = ev
        if ph == "M" and ev.get("name") not in (
            "process_name", "process_sort_index", "thread_name",
            "thread_sort_index",
        ):
            errs.append(f"event {i}: unknown metadata row {ev.get('name')!r}")
    for fid in flow_starts:
        if fid not in flow_ends:
            errs.append(f"flow id {fid}: 's' without matching 'f'")
    for fid in flow_ends:
        if fid not in flow_starts:
            errs.append(f"flow id {fid}: 'f' without matching 's'")
        elif flow_ends[fid].get("bp") != "e":
            errs.append(f"flow id {fid}: 'f' missing bp='e' binding point")
        elif flow_ends[fid]["ts"] < flow_starts[fid]["ts"]:
            errs.append(f"flow id {fid}: arrives before it departs")
    return errs


def validate_prometheus(text: str) -> List[str]:
    """Check Prometheus exposition text (line grammar + TYPE coverage)."""
    errs: List[str] = []
    typed = set()
    seen_lines = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                if not _PROM_METRIC.match(parts[2]):
                    errs.append(f"line {lineno}: bad metric name {parts[2]!r}")
                if parts[1] == "TYPE":
                    if parts[2] in typed:
                        errs.append(
                            f"line {lineno}: duplicate TYPE for {parts[2]!r}"
                        )
                    typed.add(parts[2])
            else:
                errs.append(f"line {lineno}: malformed comment {line!r}")
            continue
        m = _PROM_LINE.match(line)
        if m is None:
            errs.append(f"line {lineno}: not a valid sample line: {line!r}")
            continue
        name = m.group("name")
        if name not in typed:
            errs.append(f"line {lineno}: sample {name!r} precedes its TYPE")
        labels = m.group("labels")
        if labels is not None:
            body = labels[1:-1]
            consumed = ",".join(
                f'{k}="{v}"' for k, v in _PROM_LABEL.findall(labels)
            )
            if body and consumed != body:
                errs.append(f"line {lineno}: malformed labels {labels!r}")
        key = (name, labels or "")
        if key in seen_lines:
            errs.append(f"line {lineno}: duplicate series {name}{labels or ''}")
        seen_lines.add(key)
    if not text.endswith("\n"):
        errs.append("exposition must end with a newline")
    return errs


_COLLAPSED_LINE = re.compile(
    r"^[^\s;]+(?:;[^\s;]+)* \d+$"
)


def validate_collapsed(text: str) -> List[str]:
    """Check collapsed-stack (flamegraph) text: ``a;b;c <count>`` lines.

    The grammar flamegraph.pl / speedscope / inferno all accept: one
    stack per line, frames joined by ``;`` (no spaces or empty frames),
    a single space, then a non-negative integer count.
    """
    errs: List[str] = []
    if not isinstance(text, str):
        return ["collapsed export is not text"]
    seen = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            errs.append(f"line {lineno}: empty line")
            continue
        if not _COLLAPSED_LINE.match(line):
            errs.append(f"line {lineno}: not 'frame(;frame)* count': {line!r}")
            continue
        stack = line.rsplit(" ", 1)[0]
        if stack in seen:
            errs.append(f"line {lineno}: duplicate stack {stack!r}")
        seen.add(stack)
    if text and not text.endswith("\n"):
        errs.append("collapsed export must end with a newline")
    return errs


def validate_profile_doc(doc) -> List[str]:
    """Check a profile JSON document (`ProfileContext.report_dict`)."""
    errs: List[str] = []
    if not isinstance(doc, dict):
        return ["profile is not a JSON object"]
    if doc.get("kind") != "repro-profile":
        errs.append(f"kind is {doc.get('kind')!r}, expected 'repro-profile'")
    if doc.get("version") != 1:
        errs.append(f"unsupported version {doc.get('version')!r}")
    regions = doc.get("regions")
    if not isinstance(regions, list):
        errs.append("regions is not a list")
        regions = []
    paths = set()
    for i, row in enumerate(regions):
        if not isinstance(row, dict):
            errs.append(f"region {i}: not an object")
            continue
        for key in ("path", "name", "depth", "calls", "cum_s", "self_s"):
            if key not in row:
                errs.append(f"region {i}: missing {key!r}")
        path = row.get("path")
        if not (isinstance(path, str) and path):
            errs.append(f"region {i}: bad path {path!r}")
        elif path in paths:
            errs.append(f"region {i}: duplicate path {path!r}")
        else:
            paths.add(path)
            if not path.endswith(str(row.get("name"))):
                errs.append(f"region {i}: path does not end with name")
        calls = row.get("calls")
        if not (isinstance(calls, int) and calls >= 0):
            errs.append(f"region {i}: bad call count {calls!r}")
        cum, self_s = row.get("cum_s"), row.get("self_s")
        for key, v in (("cum_s", cum), ("self_s", self_s)):
            if not (isinstance(v, (int, float)) and v >= 0):
                errs.append(f"region {i}: bad {key} {v!r}")
        if (
            isinstance(cum, (int, float)) and isinstance(self_s, (int, float))
            and self_s > cum + 1e-9
        ):
            errs.append(f"region {i}: self time exceeds cumulative")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        errs.append("counters is not an object")
        counters = {}
    for name, value in counters.items():
        if not (isinstance(value, int) and value >= 0):
            errs.append(f"counter {name!r}: not a non-negative int")
    fp = doc.get("fingerprint")
    if not (isinstance(fp, str) and re.fullmatch(r"[0-9a-f]{16}", fp or "")):
        errs.append(f"bad fingerprint {fp!r}")
    return errs


_COMM_LINK = re.compile(r"^\d+>\d+$")


def validate_comm_doc(doc) -> List[str]:
    """Check a comm-doc (`CommStatsContext.comm_doc` shape).

    Beyond the schema, this recomputes the telescoping sums (section
    ``msgs``/``bytes`` vs their matrix cells, doc ``totals`` vs the
    sections) and the matrix fingerprint, so a hand-edited or corrupted
    document cannot slip past the CI drift gate.
    """
    from repro.obs.commstats import comm_fingerprint

    errs: List[str] = []
    if not isinstance(doc, dict):
        return ["comm-doc is not a JSON object"]
    if doc.get("kind") != "repro-comm-doc":
        errs.append(f"kind is {doc.get('kind')!r}, expected 'repro-comm-doc'")
    if doc.get("version") != 1:
        errs.append(f"unsupported version {doc.get('version')!r}")
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        errs.append("meta is not an object")
        meta = {}
    hosts = meta.get("hosts")
    if not (hosts is None or (isinstance(hosts, int) and hosts >= 0)):
        errs.append(f"meta.hosts is not a non-negative int: {hosts!r}")
        hosts = None

    section_sums = {}
    for section in ("wire", "dropped", "blobs"):
        data = doc.get(section)
        if not isinstance(data, dict):
            errs.append(f"{section} is not an object")
            section_sums[section] = (0, 0)
            continue
        msgs_sum = 0
        bytes_sum = 0
        for kind, block in data.items():
            where = f"{section}[{kind!r}]"
            if not isinstance(block, dict):
                errs.append(f"{where}: not an object")
                continue
            matrix = block.get("matrix")
            if not isinstance(matrix, dict):
                errs.append(f"{where}: matrix is not an object")
                matrix = {}
            cell_msgs = 0
            cell_bytes = 0
            for link, cell in matrix.items():
                if not _COMM_LINK.match(link):
                    errs.append(f"{where}: bad link key {link!r}")
                    continue
                if not (
                    isinstance(cell, list) and len(cell) == 2
                    and all(isinstance(v, int) and v >= 0 for v in cell)
                ):
                    errs.append(f"{where} {link}: bad cell {cell!r}")
                    continue
                if hosts:
                    src, dst = link.split(">")
                    if int(src) >= hosts or int(dst) >= hosts:
                        errs.append(
                            f"{where} {link}: host out of range (hosts={hosts})"
                        )
                cell_msgs += cell[0]
                cell_bytes += cell[1]
            for field, got, want in (
                ("msgs", block.get("msgs"), cell_msgs),
                ("bytes", block.get("bytes"), cell_bytes),
            ):
                if got != want:
                    errs.append(
                        f"{where}: {field} {got!r} != matrix sum {want}"
                    )
            msgs_sum += cell_msgs
            bytes_sum += cell_bytes
        section_sums[section] = (msgs_sum, bytes_sum)

    hist = doc.get("hist")
    if not isinstance(hist, dict):
        errs.append("hist is not an object")
        hist = {}
    for kind, buckets in hist.items():
        if not isinstance(buckets, dict):
            errs.append(f"hist[{kind!r}]: not an object")
            continue
        for bucket, count in buckets.items():
            if not (isinstance(bucket, str) and bucket.isdigit()):
                errs.append(f"hist[{kind!r}]: bad bucket key {bucket!r}")
            if not (isinstance(count, int) and count > 0):
                errs.append(f"hist[{kind!r}][{bucket}]: bad count {count!r}")

    totals = doc.get("totals")
    if not isinstance(totals, dict):
        errs.append("totals is not an object")
        totals = {}
    for prefix, section in (
        ("wire", "wire"), ("dropped", "dropped"), ("blob", "blobs"),
    ):
        msgs_sum, bytes_sum = section_sums.get(section, (0, 0))
        if totals.get(f"{prefix}_msgs") != msgs_sum:
            errs.append(
                f"totals.{prefix}_msgs {totals.get(f'{prefix}_msgs')!r} "
                f"!= {section} sum {msgs_sum}"
            )
        if totals.get(f"{prefix}_bytes") != bytes_sum:
            errs.append(
                f"totals.{prefix}_bytes {totals.get(f'{prefix}_bytes')!r} "
                f"!= {section} sum {bytes_sum}"
            )

    fp = doc.get("fingerprint")
    if not (isinstance(fp, str) and re.fullmatch(r"[0-9a-f]{16}", fp or "")):
        errs.append(f"bad fingerprint {fp!r}")
    elif not errs and fp != comm_fingerprint(doc):
        errs.append(
            f"fingerprint {fp} does not match the matrices "
            f"(recomputed {comm_fingerprint(doc)})"
        )
    return errs
