"""Exporters for the observability timeline.

Three output formats, all deterministic byte-for-byte for a given run:

* **JSON timeline** (:func:`save_timeline` / :func:`load_timeline`) —
  the native document produced by ``ObsContext.as_timeline()``; the
  input of ``repro explain``.
* **Chrome trace** (:func:`to_chrome_trace`) — per-stage ``"X"`` spans
  on one process row per host, with ``ph:"s"/"f"`` *flow events*
  stitching each message's sender-side and receiver-side spans into a
  single arrow in Perfetto / ``chrome://tracing``.
* **Prometheus text format** (:func:`to_prometheus`) — aggregate
  counters/gauges for scraping or diffing in CI.

All writes go through :func:`repro.sim.trace.atomic_write_json` (or the
equivalent temp-file + replace dance for text) so interrupted runs
cannot leave truncated artifacts.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Tuple

from repro.obs.critical_path import build_timelines, stage_attribution
from repro.sim.trace import atomic_write_json

__all__ = [
    "save_timeline",
    "load_timeline",
    "to_chrome_trace",
    "save_chrome_trace",
    "to_prometheus",
    "save_prometheus",
]


def save_timeline(path: str, timeline: dict) -> str:
    return atomic_write_json(path, timeline)


def load_timeline(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


# ----------------------------------------------------------------------
# Chrome trace with flow events
# ----------------------------------------------------------------------
def to_chrome_trace(timeline: dict) -> dict:
    """Chrome trace-event JSON with sender->receiver flow arrows.

    Each lifecycle event opens an ``"X"`` span on its host's
    ``lifecycle`` thread lasting until the message's next event (the
    stage-attribution interval).  Whenever consecutive events sit on
    *different* hosts, a flow step (``ph:"s"`` at the tail, ``ph:"f"``
    with ``bp:"e"`` at the head) links them, drawing the wire hop.
    Flow ids are sequential ints in event order — deterministic because
    the event stream is.
    """
    events: List[dict] = []
    flow_id = 0
    for tl in build_timelines(timeline):
        evs = tl.events
        for i, (stage, host, t, args) in enumerate(evs):
            nxt_t = evs[i + 1][2] if i + 1 < len(evs) else t
            span = {
                "ph": "X",
                "pid": host,
                "tid": "lifecycle",
                "cat": f"obs.{tl.layer}",
                "name": stage,
                "ts": t * 1e6,
                "dur": (nxt_t - t) * 1e6,
                "args": dict(args, trace=tl.trace),
            }
            events.append(span)
            if i + 1 < len(evs) and evs[i + 1][1] != host:
                events.append({
                    "ph": "s", "pid": host, "tid": "lifecycle",
                    "cat": "obs.flow", "name": "msg", "id": flow_id,
                    "ts": t * 1e6, "args": {"trace": tl.trace},
                })
                events.append({
                    "ph": "f", "bp": "e", "pid": evs[i + 1][1],
                    "tid": "lifecycle", "cat": "obs.flow", "name": "msg",
                    "id": flow_id, "ts": evs[i + 1][2] * 1e6,
                    "args": {"trace": tl.trace},
                })
                flow_id += 1
    # Probe samples as counter tracks.
    for s in timeline.get("samples", ()):
        name = f"{s['probe']}[{s['host']}]"
        for t, v in zip(s.get("times", ()), s.get("values", ())):
            events.append({
                "ph": "C", "pid": s["host"], "tid": 0,
                "cat": "obs.probe", "name": name,
                "ts": t * 1e6, "args": {"value": v},
            })
    # Stalls as spans on a dedicated thread row.
    for host, kind, start, end in timeline.get("stalls", ()):
        events.append({
            "ph": "X", "pid": host, "tid": "stalls",
            "cat": "obs.stall", "name": kind,
            "ts": start * 1e6, "dur": (end - start) * 1e6,
            "args": {},
        })
    # Stable, sorted metadata rows (same convention as Tracer).
    hosts = sorted({e["pid"] for e in events})
    for h in hosts:
        events.append({
            "ph": "M", "pid": h, "name": "process_name",
            "args": {"name": f"host {h}"},
        })
        events.append({
            "ph": "M", "pid": h, "name": "process_sort_index",
            "args": {"sort_index": h},
        })
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def save_chrome_trace(path: str, timeline: dict) -> str:
    return atomic_write_json(path, to_chrome_trace(timeline))


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: List[Tuple[str, object]]) -> str:
    inner = ",".join(f'{k}="{_prom_escape(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def to_prometheus(timeline: dict, counters: Dict[str, int] = None,
                  comm: dict = None) -> str:
    """Prometheus exposition text for one run's timeline.

    Families: ``repro_obs_stage_seconds_total`` (per layer/stage),
    ``repro_obs_messages_total`` (traced messages per layer),
    ``repro_obs_probe_peak`` (max sampled value per probe/host),
    ``repro_obs_stall_seconds_total`` (per kind/host), plus run-level
    gauges recovered from the timeline's ``meta``.  ``counters`` (a
    :meth:`CounterRegistry.as_dict` mapping from the host-side
    profiler) adds a ``repro_work_counter_total`` family so serve
    deployments expose work counts alongside latency; ``comm`` (a
    comm-doc from :meth:`CommStatsContext.comm_doc`) merges the
    ``repro_comm_*`` traffic-matrix families.  Lines are sorted within
    each family; output is deterministic.

    Counter families are *registered*: they are emitted with an
    explicit 0-valued sample even when a run produced no data for them
    (a zero-message run must not silently drop a family a dashboard
    alerts on); only the gauge families stay data-gated.
    """
    timelines = build_timelines(timeline)
    lines: List[str] = []

    def counter_family(name: str, help_text: str,
                       samples: List[str]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        if samples:
            lines.extend(samples)
        else:
            lines.append(f"{name} 0")

    att = stage_attribution(timelines)
    counter_family(
        "repro_obs_stage_seconds_total",
        "Simulated seconds attributed to each message-lifecycle stage.",
        [
            "repro_obs_stage_seconds_total"
            f"{_labels([('layer', layer), ('stage', stage)])} "
            f"{att[layer][stage]:.12g}"
            for layer in sorted(att) for stage in sorted(att[layer])
        ],
    )

    counts: Dict[str, int] = {}
    for tl in timelines:
        counts[tl.layer] = counts.get(tl.layer, 0) + 1
    counter_family(
        "repro_obs_messages_total",
        "Traced messages per comm layer.",
        [
            f"repro_obs_messages_total{_labels([('layer', layer)])} "
            f"{counts[layer]}"
            for layer in sorted(counts)
        ],
    )

    samples = sorted(
        (s for s in timeline.get("samples", ()) if s.get("values")),
        key=lambda s: (s["probe"], s["host"]),
    )
    if samples:
        lines.append(
            "# HELP repro_obs_probe_peak Maximum sampled value of each "
            "queue/occupancy probe."
        )
        lines.append("# TYPE repro_obs_probe_peak gauge")
        for s in samples:
            labels = _labels([("probe", s["probe"]), ("host", s["host"])])
            lines.append(
                f"repro_obs_probe_peak{labels} {max(s['values']):.12g}"
            )

    stalls: Dict[Tuple[str, int], float] = {}
    for host, kind, start, end in timeline.get("stalls", ()):
        key = (kind, host)
        stalls[key] = stalls.get(key, 0.0) + (end - start)
    counter_family(
        "repro_obs_stall_seconds_total",
        "Simulated seconds hosts spent blocked on protocol resources.",
        [
            "repro_obs_stall_seconds_total"
            f"{_labels([('kind', kind), ('host', host)])} "
            f"{stalls[(kind, host)]:.12g}"
            for kind, host in sorted(stalls)
        ],
    )

    if counters is not None:
        counter_family(
            "repro_work_counter_total",
            "Deterministic host-side work counters (events, packets, "
            "matching probes, pool traffic).",
            [
                f"repro_work_counter_total{_labels([('counter', name)])} "
                f"{int(counters[name])}"
                for name in sorted(counters)
            ],
        )

    if comm is not None:
        from repro.obs.commstats import comm_prometheus_lines

        lines.extend(comm_prometheus_lines(comm))

    meta = timeline.get("meta", {})
    metric_meta = [
        ("total_seconds", "repro_run_total_seconds"),
        ("compute_seconds", "repro_run_compute_seconds"),
        ("comm_seconds", "repro_run_comm_seconds"),
        ("setup_seconds", "repro_run_setup_seconds"),
        ("rounds", "repro_run_rounds"),
        ("blobs_sent", "repro_run_blobs_sent"),
        ("updates_shipped", "repro_run_updates_shipped"),
    ]
    for key, metric in metric_meta:
        if key in meta:
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {float(meta[key]):.12g}")
    return "\n".join(lines) + "\n"


def save_prometheus(path: str, timeline: dict,
                    counters: Dict[str, int] = None,
                    comm: dict = None) -> str:
    """Atomic text write of the Prometheus dump."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as f:
            f.write(to_prometheus(timeline, counters, comm))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
