"""Host-side performance observability: regions, counters, profiles.

Two instruments, one context, zero cost when off:

* :class:`RegionProfiler` — nestable ``region("name")`` annotations over
  the *host-side* (wall-clock) hot paths: event dispatch in
  ``sim.engine``, matching walks in ``mpi.matching``, packet handling in
  ``netapi.nic``, progress in ``lci.server``, serialization and
  scatter/apply in ``engine.bsp``.  Produces a hierarchical
  self/cumulative report with call counts, exportable as JSON, a top-N
  table, or collapsed-stack (flamegraph) lines.
* :class:`CounterRegistry` — deterministic *work* counters (events
  scheduled/fired, heap ops, packets/bytes, matching probes, pool
  acquires).  Pure functions of the simulated schedule, so repeat runs
  of the same scenario produce identical counts and an identical
  :meth:`~CounterRegistry.fingerprint` — the drift-detection anchor in
  ``BENCH_core.json``.

Both ride on :class:`ProfileContext`, discovered exactly like faults /
sanitizers / obs: ``BspEngine`` installs it as ``fabric.profiler`` and
``env.profiler``; every component does ``getattr(..., "profiler", None)``
and no-ops on ``None``.  The contract mirrors ``repro.obs``:

* **Off by default** — no context installed means no hook fires beyond
  a ``None`` check.
* **Bit-identical when on** — hooks never advance simulated time, touch
  a :class:`~repro.sim.monitor.StatRegistry`, or change iteration
  order; ``RunMetrics`` with the profiler enabled equals the plain run
  (CI-asserted).
* **Cheap when on** — wall-clock reads bracket coarse synchronous
  segments only (never per-event), and per-packet *work counts* are
  never incremented on the hot path at all: components that already
  maintain deterministic tallies (NIC stats, pool stats, matching-queue
  probe counts) register a :meth:`ProfileContext.add_source` callback
  instead, and the registry folds their totals in lazily at snapshot
  time (:meth:`ProfileContext.flush`).  The bench harness measures the
  residual overhead and CI bounds it below 5%.

Wall-clock time is intentionally confined to this module:
:func:`wall_now` is the single sanctioned clock, so the determinism
lint (rule D101) flags any *other* wall-clock read in the tree.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Dict, List, Optional

__all__ = [
    "wall_now",
    "cpu_now",
    "RegionProfiler",
    "CounterRegistry",
    "ProfileContext",
    "PROFILE_DOC_KIND",
]

PROFILE_DOC_KIND = "repro-profile"
PROFILE_DOC_VERSION = 1


def wall_now() -> float:
    """The one sanctioned wall-clock read in the codebase.

    Everything the profiler measures is *host* time — how long the
    pure-Python simulator itself takes — which is exactly what the
    determinism lint exists to keep out of the simulation modules.
    Routing every read through this helper keeps the suppression
    surface to a single line and makes profiling code grep-able.
    """
    return time.perf_counter()  # lint-ok: D101 the profiler measures host wall-clock by design


#: The raw C clock, bound into the hot-path closures below: a call to
#: the :func:`wall_now` Python wrapper costs more than the clock read
#: itself, so the closures skip the frame.  Same clock, same lint
#: rationale as :func:`wall_now`.
_perf_counter = time.perf_counter  # lint-ok: D101 hot-path alias of wall_now

#: Sampling stride for the highest-frequency deferred leaf cells.
#: Sites that fire per packet or per queue walk only read the clock on
#: every STRIDE'th call and report ``cum * STRIDE`` from their leaf
#: source; call counts stay exact.  The untimed calls pay one counter
#: increment and one AND — the stride is a power of two so the "is
#: this call timed" check is a single mask test.  Per-phase cells
#: (compute/gather/scatter) stay fully timed: their hook cost
#: amortizes over whole phases and their low call counts would make a
#: sampled estimate coarse.
LEAF_SAMPLE_STRIDE = 8
LEAF_SAMPLE_MASK = LEAF_SAMPLE_STRIDE - 1

#: Process CPU time, for *measuring the profiler itself*.  A
#: single-threaded simulator's profiling overhead is exactly the extra
#: CPU its hooks burn; CPU time is immune to hypervisor steal and far
#: less sensitive to frequency scaling than wall-clock, both of which
#: dwarf a few percent of hook cost on small shared machines.  Kept
#: here with the sanctioned clocks so host-time reads stay confined to
#: this module (process_time is not a D101 clock, but the convention
#: holds).
cpu_now = time.process_time


class _Node:
    """One region in the profile tree."""

    __slots__ = ("name", "children", "calls", "cum")

    def __init__(self, name: str):
        self.name = name
        self.children: Dict[str, "_Node"] = {}
        self.calls = 0
        self.cum = 0.0


class RegionProfiler:
    """Hierarchical wall-clock region profiler.

    Regions nest: entering ``b`` while inside ``a`` accounts ``b`` as a
    child of ``a``, and ``a``'s *self* time is its cumulative time minus
    its children's.  The hot-path API is :meth:`enter` / :meth:`exit`
    (no allocation); :meth:`region` adds ``with``-statement sugar for
    coarse blocks.

    ``clock`` is injectable for deterministic tests; it defaults to
    :func:`wall_now`.
    """

    def __init__(self, clock=wall_now):
        if clock is wall_now:
            # The default clock drops the Python wrapper frame; tests
            # that inject a custom clock keep theirs verbatim.
            clock = _perf_counter
        self._clock = clock
        #: The raw clock, exposed so leaf call sites can read the start
        #: timestamp with one attribute load + one C call (see ``leaf``).
        self.clock = clock
        self.root = _Node("")
        # Stack of (node, t_enter); the virtual root never pops.
        stack: List[tuple] = [(self.root, 0.0)]
        self._stack = stack

        # enter/exit/leaf are built as closures with every name bound
        # local (no ``self`` attribute traffic, plain-function call
        # overhead): they run hundreds of times per simulated round, and
        # their cost is the profiler's measured overhead.
        def enter(name, _stack=stack, _clock=clock, _node_cls=_Node):
            children = _stack[-1][0].children
            try:
                node = children[name]
            except KeyError:
                node = children[name] = _node_cls(name)
            _stack.append((node, _clock()))

        def exit(_stack=stack, _clock=clock):
            node, t0 = _stack.pop()
            node.cum += _clock() - t0
            node.calls += 1

        # Fused enter+exit for *leaf* regions — ones that never contain
        # a nested region (per-packet NIC handling, matching walks,
        # pack/apply).  The caller reads ``t0 = prof.clock()`` before
        # the work and calls ``leaf(name, t0)`` after: one Python call
        # instead of two and no stack push/pop, which roughly halves
        # the per-region cost on the paths that dominate overhead.  The
        # node still attaches to the innermost open region, so the tree
        # is identical to what enter/exit would have produced.
        def leaf(name, t0, _stack=stack, _clock=clock, _node_cls=_Node):
            dt = _clock() - t0
            children = _stack[-1][0].children
            try:
                node = children[name]
            except KeyError:
                node = children[name] = _node_cls(name)
            node.cum += dt
            node.calls += 1

        #: Open a region (hot path; see closure above).
        self.enter = enter
        #: Close the innermost region (hot path; see closure above).
        self.exit = exit
        #: Close a fused leaf region opened at ``t0`` (hot path).
        self.leaf = leaf
        #: Deferred leaf-region sources (see :meth:`add_leaf_source`).
        self._leaf_sources: List = []

    def region(self, name: str) -> "_Region":
        """``with profiler.region("comm.serialization.pack"): ...``"""
        return _Region(self, name)

    def add_leaf_source(self, fn) -> None:
        """Register a deferred leaf-region source.

        ``fn()`` returns an iterable of ``(parent_path, name,
        cum_seconds, calls)`` *running totals*.  The highest-frequency
        leaf regions (per-packet NIC handling, matching walks, progress
        harvests) accumulate into plain floats at the call site — two
        clock reads and a couple of list ops, no stack or tree traffic —
        and this fold reconstructs their tree nodes at snapshot time.
        The exact analogue of :meth:`ProfileContext.add_source` for
        wall-clock regions: totals are summed across sources per
        ``(parent_path, name)`` and *written* (not added) to the node,
        so repeated folds are idempotent.  ``parent_path`` is the
        ``;``-joined region path the leaf belongs under (these hot paths
        only ever run inside the event loop, so it is static per site).
        """
        self._leaf_sources.append(fn)

    def _fold_leaf_sources(self) -> None:
        totals: Dict[tuple, list] = {}
        for fn in self._leaf_sources:
            for parent, name, cum, calls in fn():
                key = (parent, name)
                t = totals.get(key)
                if t is None:
                    totals[key] = [cum, calls]
                else:
                    t[0] += cum
                    t[1] += calls
        for (parent, name), (cum, calls) in totals.items():
            if not calls:
                # A leaf that never fired would otherwise fabricate its
                # parent chain in the report.
                continue
            node = self.root
            if parent:
                for part in parent.split(";"):
                    child = node.children.get(part)
                    if child is None:
                        child = node.children[part] = _Node(part)
                    node = child
            leaf = node.children.get(name)
            if leaf is None:
                leaf = node.children[name] = _Node(name)
            leaf.cum = cum
            leaf.calls = calls

    @property
    def depth(self) -> int:
        """Current nesting depth (0 at the root; useful in tests)."""
        return len(self._stack) - 1

    # -- reporting ------------------------------------------------------
    def rows(self) -> List[dict]:
        """Flattened tree, depth-first, children in name order.

        Each row carries the full ``;``-joined path, call count,
        cumulative seconds, and self seconds (cumulative minus
        children's cumulative, floored at zero against clock jitter).
        """
        self._fold_leaf_sources()
        out: List[dict] = []

        def walk(node: _Node, prefix: str, depth: int) -> None:
            for name in sorted(node.children):
                child = node.children[name]
                path = f"{prefix};{name}" if prefix else name
                child_cum = 0.0
                for sub in child.children.values():
                    child_cum += sub.cum
                out.append({
                    "path": path,
                    "name": name,
                    "depth": depth,
                    "calls": child.calls,
                    "cum_s": child.cum,
                    "self_s": max(child.cum - child_cum, 0.0),
                })
                walk(child, path, depth + 1)

        walk(self.root, "", 0)
        return out

    def to_collapsed(self) -> str:
        """Collapsed-stack (flamegraph) export.

        One ``a;b;c <count>`` line per region path, where the count is
        the region's *self* time in integer microseconds — load it with
        flamegraph.pl / speedscope / inferno as-is.  Paths are sorted so
        the export is stable given stable timings.
        """
        lines = []
        for row in self.rows():
            lines.append(f"{row['path']} {int(round(row['self_s'] * 1e6))}")
        return "\n".join(lines) + ("\n" if lines else "")

    def format_top(self, n: int = 10) -> str:
        """Top-``n`` regions by self time, as an aligned table."""
        rows = sorted(self.rows(), key=lambda r: -r["self_s"])[:n]
        total = 0.0
        for r in self.rows():
            total += r["self_s"]
        header = f"{'region':<42} {'calls':>9} {'self':>10} {'cum':>10} {'self%':>6}"
        lines = [header, "-" * len(header)]
        for r in rows:
            pct = 100.0 * r["self_s"] / total if total > 0 else 0.0
            lines.append(
                f"{r['name']:<42} {r['calls']:>9} "
                f"{r['self_s'] * 1e3:>8.2f}ms {r['cum_s'] * 1e3:>8.2f}ms "
                f"{pct:>5.1f}%"
            )
        return "\n".join(lines)


class _Region:
    __slots__ = ("_prof", "_name")

    def __init__(self, prof: RegionProfiler, name: str):
        self._prof = prof
        self._name = name

    def __enter__(self) -> None:
        self._prof.enter(self._name)

    def __exit__(self, *exc) -> None:
        self._prof.exit()


class CounterRegistry:
    """Deterministic host-side work counters.

    Unlike :class:`~repro.sim.monitor.StatRegistry` (per-component,
    folded into ``RunMetrics``), this is a single flat cross-layer
    registry whose values depend only on the simulated schedule — never
    on wall-clock — so two runs of the same scenario agree exactly.
    :meth:`fingerprint` condenses the whole registry into a short hash:
    the cheapest possible "did the work change?" probe for the bench
    trajectory and for perf refactors that must not alter behaviour.
    """

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def inc(self, name: str, n: int = 1) -> None:
        c = self._counts
        c[name] = c.get(name, 0) + n

    def set(self, name: str, value: int) -> None:
        """Overwrite a counter with an absolute value.

        The landing pad for deferred sources
        (:meth:`ProfileContext.flush`): a source reports its running
        total, so repeated flushes write the same value (idempotent).
        """
        self._counts[name] = value

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Counters in sorted-name order (canonical form)."""
        return {k: self._counts[k] for k in sorted(self._counts)}

    def fingerprint(self) -> str:
        """sha256 over the canonical JSON encoding, truncated to 16 hex.

        Stable across insertion order and Python versions; changes iff
        any counter's value changes.
        """
        blob = json.dumps(self.as_dict(), sort_keys=True).encode("ascii")
        return hashlib.sha256(blob).hexdigest()[:16]

    def merge(self, other: "CounterRegistry") -> None:
        for name, value in other.as_dict().items():
            self.inc(name, value)

    def __len__(self) -> int:
        return len(self._counts)


class ProfileContext:
    """Bundles the region profiler + counter registry onto the fabric.

    Same discovery pattern as ``FaultInjector`` / ``SanitizerContext`` /
    ``ObsContext``: :meth:`install` hangs the context off the fabric and
    environment; components look it up once at construction (or read
    ``fabric.profiler`` dynamically on slow paths) and skip every hook
    when it is ``None``.

    One context may be installed across several engines (the serve
    layer runs one engine per batch): regions and counters accumulate,
    which is exactly what a service-level profile wants.

    Two ways for counts to land in the registry:

    * **Direct** — coarse per-phase code calls ``counters.inc`` (or the
      bound :attr:`count` alias).  Used where a handful of increments
      per round cannot matter.
    * **Deferred** — per-packet/per-op paths never touch the registry;
      the owning component registers an :meth:`add_source` callback
      that reports its running totals from state it maintains anyway
      (NIC/pool ``StatRegistry`` counters, matching-queue probe
      tallies).  :meth:`flush` folds every source in; all snapshot
      paths (:meth:`report_dict`, :meth:`counters_dict`,
      :meth:`fingerprint`, :meth:`format_counters`) flush first.
      Reading ``ctx.counters`` directly between flushes sees only the
      direct increments.
    """

    def __init__(self, clock=wall_now):
        self.regions = RegionProfiler(clock=clock)
        self.counters = CounterRegistry()
        self.env = None
        self.fabric = None
        #: Deferred counter sources: callables returning an iterable of
        #: ``(name, running_total)`` pairs; totals are summed across
        #: sources at flush time.
        self._sources: List = []
        # Hot-path aliases bound past the delegation layer: call sites
        # pay one method call, not two.
        self.enter = self.regions.enter
        self.exit = self.regions.exit
        self.leaf = self.regions.leaf
        self.clock = self.regions.clock
        self.count = self.counters.inc
        self.add_leaf_source = self.regions.add_leaf_source

    def install(self, env, fabric) -> "ProfileContext":
        self.env = env
        self.fabric = fabric
        fabric.profiler = self
        env.profiler = self
        # The NIC layer keeps deterministic per-NIC packet/byte stats
        # regardless of profiling; snapshot them instead of paying
        # per-packet increments.
        self.add_source(lambda: _fabric_counts(fabric))
        return self

    def add_source(self, fn) -> None:
        """Register a deferred counter source (see the class docstring)."""
        self._sources.append(fn)

    def flush(self) -> "ProfileContext":
        """Fold every deferred source's totals into the registry.

        Idempotent: sources report running totals, summed across
        sources and written with :meth:`CounterRegistry.set`.  Zero
        totals are skipped so counters only exist once the event they
        count has happened (matching the direct-increment behaviour).
        """
        totals: Dict[str, int] = {}
        for fn in self._sources:
            for name, value in fn():
                totals[name] = totals.get(name, 0) + value
        for name, value in totals.items():
            if value:
                self.counters.set(name, value)
        return self

    # -- snapshot accessors (always flushed) ---------------------------
    def counters_dict(self) -> Dict[str, int]:
        self.flush()
        return self.counters.as_dict()

    def fingerprint(self) -> str:
        self.flush()
        return self.counters.fingerprint()

    # -- reporting ------------------------------------------------------
    def report_dict(self, meta: Optional[dict] = None) -> dict:
        """The JSON profile document (validated by
        :func:`repro.obs.validate.validate_profile_doc`)."""
        self.flush()
        return {
            "kind": PROFILE_DOC_KIND,
            "version": PROFILE_DOC_VERSION,
            "meta": dict(meta or {}),
            "regions": self.regions.rows(),
            "counters": self.counters.as_dict(),
            "fingerprint": self.counters.fingerprint(),
        }

    def format_top(self, n: int = 10) -> str:
        return self.regions.format_top(n)

    def to_collapsed(self) -> str:
        return self.regions.to_collapsed()

    def format_counters(self) -> str:
        """Counters grouped by layer prefix, as an aligned table."""
        counts = self.counters_dict()
        if not counts:
            return "(no counters)"
        width = max(len(k) for k in counts)
        lines = [f"{'counter':<{width}}  {'value':>14}"]
        lines.append("-" * (width + 16))
        prev_group = None
        for name in counts:
            group = name.split(".", 1)[0]
            if prev_group is not None and group != prev_group:
                lines.append("")
            prev_group = group
            lines.append(f"{name:<{width}}  {counts[name]:>14}")
        lines.append("")
        lines.append(f"{'fingerprint':<{width}}  {self.counters.fingerprint():>14}")
        return "\n".join(lines)

    def save_json(self, path: str, meta: Optional[dict] = None) -> None:
        _atomic_write_text(
            path, json.dumps(self.report_dict(meta), indent=2) + "\n"
        )

    def save_collapsed(self, path: str) -> None:
        _atomic_write_text(path, self.to_collapsed())


def _fabric_counts(fabric):
    """Deferred source over the fabric's per-NIC stat registries.

    ``pkts_sent`` counts successful injections (the dispatcher's old
    per-packet increments counted exactly the same events), so the
    registry values are bit-identical to what hot-path counting would
    produce — without any hot-path cost.
    """
    return (
        ("netapi.pkts_injected", fabric.total("pkts_sent")),
        ("netapi.bytes_injected", fabric.total("bytes_sent")),
        ("netapi.pkts_delivered", fabric.total("pkts_received")),
        ("netapi.bytes_delivered", fabric.total("bytes_received")),
        ("netapi.tx_full", fabric.total("tx_queue_full")),
    )


def _atomic_write_text(path: str, text: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
