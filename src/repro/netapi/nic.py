"""Simulated NIC endpoints and the fabric connecting them.

Timing follows the LogGP family: a packet injected at time ``t`` waits for
the NIC's transmit pipeline (serialization at link bandwidth, with a
minimum inter-message gap enforcing the NIC's message-rate cap), crosses
the wire after latency ``L``, and appears in the destination NIC's receive
queue.  CPU-side overheads (``o_s``/``o_r``) are charged by the *callers*
(the communication layers), because where those cycles are spent — and by
which thread — is precisely what differs between MPI and LCI.

Injection can fail when the transmit queue is full (``try_inject`` returns
``False``).  This is the hardware behaviour that MPI hides (and sometimes
crashes on — Section III-B) and that LCI surfaces to the caller as a
retryable condition.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.obs.profile import LEAF_SAMPLE_MASK, LEAF_SAMPLE_STRIDE
from repro.sim.engine import Environment, Event, SimulationError
from repro.sim.machine import MachineModel, NicModel
from repro.sim.monitor import StatRegistry
from repro.netapi.packet import Packet, PacketType

__all__ = ["RegisteredBuffer", "Nic", "Fabric"]


_rkey_counter = itertools.count(1)


class RegisteredBuffer:
    """A memory region registered for RDMA access.

    ``lc_put`` targets one of these via its ``rkey``.  The simulated
    contents are whatever payload objects remote peers deposit; ``nbytes``
    is the simulated capacity used for accounting and bounds checks.
    """

    def __init__(self, host: int, nbytes: int, label: str = ""):
        self.host = host
        self.nbytes = int(nbytes)
        self.label = label
        self.rkey = next(_rkey_counter)
        #: offset -> payload object, as deposited by remote puts.
        self.contents: Dict[int, object] = {}
        self.bytes_written = 0
        self.revoked = False

    def write(self, offset: int, payload: object, nbytes: int) -> None:
        if self.revoked:
            raise SimulationError(f"RDMA write to revoked buffer {self.label!r}")
        if offset < 0 or offset + nbytes > self.nbytes:
            raise SimulationError(
                f"RDMA write out of bounds: [{offset}, {offset + nbytes}) "
                f"into {self.nbytes}-byte buffer {self.label!r}"
            )
        self.contents[offset] = payload
        self.bytes_written += nbytes

    def clear(self) -> None:
        self.contents.clear()
        self.bytes_written = 0

    def revoke(self) -> None:
        self.revoked = True


class Nic:
    """One host's network interface.

    ``try_inject`` and ``deliver`` are *rebindable method slots*: when no
    fault injector, observability context, commstats collector, or
    profiler is attached to the fabric, the instance attributes point at
    stripped-down fast variants
    with zero hook branches on the per-packet path; attaching any of them
    (a :class:`Fabric` property setter) rebinds every NIC to the general
    variants.  Both variants schedule exactly the same calendar entries
    in the same order, so runs are bit-identical either way.
    """

    def __init__(
        self,
        env: Environment,
        fabric: "Fabric",
        host: int,
        model: NicModel,
        stats: StatRegistry,
    ):
        self.env = env
        self.fabric = fabric
        self.host = host
        self.model = model
        self.stats = stats
        self.rx_queue: Deque[Packet] = deque()
        self._arrival_waiters: List[Event] = []
        self._tx_free_at = 0.0
        self._tx_outstanding = 0
        self._registered: Dict[int, RegisteredBuffer] = {}
        # Hoisted counter objects: one dict lookup per counter per run
        # instead of one per packet.
        self._c_tx_full = stats.counter("tx_queue_full")
        self._c_pkts_sent = stats.counter("pkts_sent")
        self._c_bytes_sent = stats.counter("bytes_sent")
        self._c_pkts_recv = stats.counter("pkts_received")
        self._c_bytes_recv = stats.counter("bytes_received")
        self._rebind()

    def _rebind(self) -> None:
        """Select fast or general per-packet entry points (see class doc)."""
        fab = self.fabric
        if fab._faults is None and fab._obs is None and fab._commstats is None:
            if fab._profiler is None:
                self.try_inject = self._inject_plain
                self.deliver = self._deliver_plain
            else:
                # Profiler alone: the plain scheduling path (identical
                # calendar entries) timed into per-NIC [cum, calls]
                # accumulators with sampled clock reads (every
                # LEAF_SAMPLE_STRIDE'th packet; cum scaled back up by
                # the source, calls exact) — no region-tree traffic.
                # A deferred leaf source rebuilds the ``netapi.nic.*``
                # nodes at snapshot time (packets only ever move inside
                # the event loop, so the parent region is static).
                prof = fab._profiler
                clock = prof.clock
                inject, deliver = self._inject_plain, self._deliver_plain
                inj = [0.0, 0]
                dlv = [0.0, 0]

                def inject_profiled(
                    pkt, on_local_complete=None, notify_target=True
                ):
                    n = inj[1] + 1
                    inj[1] = n
                    if n & LEAF_SAMPLE_MASK:
                        return inject(pkt, on_local_complete, notify_target)
                    t0 = clock()
                    try:
                        return inject(pkt, on_local_complete, notify_target)
                    finally:
                        inj[0] += clock() - t0

                def deliver_profiled(pkt):
                    n = dlv[1] + 1
                    dlv[1] = n
                    if n & LEAF_SAMPLE_MASK:
                        return deliver(pkt)
                    t0 = clock()
                    try:
                        deliver(pkt)
                    finally:
                        dlv[0] += clock() - t0

                self.try_inject = inject_profiled
                self.deliver = deliver_profiled
                prof.add_leaf_source(lambda: (
                    ("sim.engine.run", "netapi.nic.inject",
                     inj[0] * LEAF_SAMPLE_STRIDE, inj[1]),
                    ("sim.engine.run", "netapi.nic.deliver",
                     dlv[0] * LEAF_SAMPLE_STRIDE, dlv[1]),
                ))
        else:
            self.try_inject = self._try_inject_general
            self.deliver = self._deliver_general

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def _inject_plain(
        self,
        pkt: Packet,
        on_local_complete: Optional[Callable[[], None]] = None,
        notify_target: bool = True,
    ) -> bool:
        """``try_inject`` with no faults/obs/profiler attached.

        Schedules the same two raw calendar entries (departure, arrival)
        as the general path, in the same order — bit-identical timing and
        sequence numbering, minus every hook branch.
        """
        if pkt.src != self.host:
            raise SimulationError(
                f"packet src {pkt.src} injected from host {self.host}"
            )
        if self._tx_outstanding >= self.model.tx_queue_depth:
            self._c_tx_full.add()
            return False

        env = self.env
        model = self.model
        wire_bytes = pkt.wire_bytes
        ser = model.serialization_time(wire_bytes)
        gap = model.injection_gap
        latency = model.latency
        if pkt.ptype is PacketType.RDMA:
            latency += model.rdma_extra_latency
        now = env._now
        start = self._tx_free_at
        if now > start:
            start = now
        self._tx_free_at = start + (ser if ser > gap else gap)
        departure = start + ser

        self._tx_outstanding += 1
        self._c_pkts_sent.add()
        self._c_bytes_sent.add(wire_bytes)
        dst_nic = self.fabric.nic(pkt.dst)

        is_rdma = pkt.ptype is PacketType.RDMA

        def _departed() -> None:
            self._tx_outstanding -= 1
            if not is_rdma and on_local_complete is not None:
                on_local_complete()

        env.call_later(departure - now, _departed)

        def _arrived() -> None:
            if is_rdma:
                self._complete_rdma(pkt, dst_nic)
                if on_local_complete is not None:
                    env.call_later(model.latency, on_local_complete)
            if notify_target:
                dst_nic.deliver(pkt)

        env.call_later(departure + latency - now, _arrived)
        return True

    def _try_inject_general(
        self,
        pkt: Packet,
        on_local_complete: Optional[Callable[[], None]] = None,
        notify_target: bool = True,
    ) -> bool:
        """Hand ``pkt`` to the NIC; returns False if the TX queue is full.

        ``on_local_complete`` fires when the send buffer may be reused:
        at wire departure for plain sends, and after the remote ACK for
        RDMA puts.  ``notify_target`` controls whether the destination CPU
        sees the packet in its receive queue (False models a pure RDMA
        write with no completion at the target, as used by MPI-RMA).
        """
        # Packet/byte work counts come from the always-on NIC stats via
        # a deferred profiler source (see obs.profile._fabric_counts);
        # only the wall-clock region is paid here, in the fused leaf
        # form (one profiler call per packet, no stack traffic).
        prof = self.fabric._profiler
        if prof is None:
            return self._inject(pkt, on_local_complete, notify_target)
        t0 = prof.clock()
        try:
            return self._inject(pkt, on_local_complete, notify_target)
        finally:
            prof.leaf("netapi.nic.inject", t0)

    # Class-level aliases so un-rebound instances (pickles, exotic
    # subclassing) and introspection keep working.
    try_inject = _try_inject_general

    def _inject(
        self,
        pkt: Packet,
        on_local_complete: Optional[Callable[[], None]],
        notify_target: bool,
    ) -> bool:
        if pkt.src != self.host:
            raise SimulationError(
                f"packet src {pkt.src} injected from host {self.host}"
            )
        faults = self.fabric._faults
        if faults is not None and faults.tx_blocked(self.host, pkt):
            # An injected NIC stall looks exactly like a full TX queue:
            # the retryable condition the comm layers already handle.
            self._c_tx_full.add()
            return False
        if self._tx_outstanding >= self.model.tx_queue_depth:
            self._c_tx_full.add()
            return False

        env = self.env
        wire_bytes = pkt.wire_bytes
        ser = self.model.serialization_time(wire_bytes)
        gap = self.model.injection_gap
        latency = self.model.latency
        if pkt.ptype is PacketType.RDMA:
            latency += self.model.rdma_extra_latency
        if faults is not None:
            ser, latency = faults.link_adjust(pkt, ser, latency)
        start = max(env.now, self._tx_free_at)
        self._tx_free_at = start + max(ser, gap)
        departure = start + ser
        arrival = departure + latency

        self._tx_outstanding += 1
        self._c_pkts_sent.add()
        self._c_bytes_sent.add(wire_bytes)
        obs = self.fabric._obs
        if obs is not None:
            obs.on_inject(pkt)
        commstats = self.fabric._commstats
        if commstats is not None:
            # Counted at injection, right after the always-on NIC
            # counters, so the traffic matrices telescope exactly to
            # pkts_sent/bytes_sent (dropped packets included).
            commstats.on_inject(pkt)

        def _departed() -> None:
            self._tx_outstanding -= 1
            if obs is not None:
                obs.on_depart(pkt)
            if pkt.ptype is not PacketType.RDMA and on_local_complete:
                on_local_complete()

        env.call_later(departure - env.now, _departed)

        dst_nic = self.fabric.nic(pkt.dst)
        fate = faults.transit_fate(pkt) if faults is not None else None
        if fate is not None and fate.dropped:
            # Vanished in transit: the sender saw a clean departure, the
            # receiver sees nothing.  For RDMA the hardware completion is
            # lost with the packet — the classic lost-completion fault.
            if obs is not None:
                obs.on_drop(pkt)
            if commstats is not None:
                commstats.on_drop(pkt)
            return True

        def _arrived() -> None:
            if obs is not None:
                obs.on_arrive(pkt, notify_target)
            if pkt.ptype is PacketType.RDMA:
                self._complete_rdma(pkt, dst_nic)
                if on_local_complete:
                    # Hardware completion after the ACK returns.
                    env.call_later(self.model.latency, on_local_complete)
            if notify_target:
                dst_nic.deliver(pkt)

        reorder = fate.delay if fate is not None else 0.0
        env.call_later(arrival + reorder - env.now, _arrived)
        if fate is not None and fate.duplicated and notify_target:
            # A second copy of the wire packet reaches the receive queue;
            # whether that is deduplicated or double-processed is up to
            # the communication layer (LCI dedupes, MPI diverges).
            env.call_later(
                arrival + reorder + fate.dup_delay - env.now,
                lambda: dst_nic.deliver(pkt),
            )
        return True

    def _complete_rdma(self, pkt: Packet, dst_nic: "Nic") -> None:
        rkey = pkt.meta.get("rkey")
        if rkey is None:
            raise SimulationError(f"RDMA packet without rkey: {pkt!r}")
        buf = dst_nic._registered.get(rkey)
        if buf is None:
            raise SimulationError(
                f"RDMA write to unknown rkey {rkey} on host {pkt.dst}"
            )
        buf.write(pkt.meta.get("offset", 0), pkt.payload, pkt.size)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _deliver_general(self, pkt: Packet) -> None:
        """Called by the fabric when a packet reaches this host."""
        prof = self.fabric._profiler
        if prof is None:
            return self._deliver(pkt)
        t0 = prof.clock()
        try:
            self._deliver(pkt)
        finally:
            prof.leaf("netapi.nic.deliver", t0)

    deliver = _deliver_general

    def _deliver(self, pkt: Packet) -> None:
        if pkt.dst != self.host:
            raise SimulationError(
                f"packet for host {pkt.dst} delivered to host {self.host}"
            )
        self.rx_queue.append(pkt)
        self._c_pkts_recv.add()
        self._c_bytes_recv.add(pkt.wire_bytes)
        obs = self.fabric._obs
        if obs is not None:
            obs.on_rx(pkt)
        if self._arrival_waiters:
            waiters, self._arrival_waiters = self._arrival_waiters, []
            for ev in waiters:
                ev.succeed(None)

    def _deliver_plain(self, pkt: Packet) -> None:
        """``deliver`` with no obs context attached (no hook branches)."""
        if pkt.dst != self.host:
            raise SimulationError(
                f"packet for host {pkt.dst} delivered to host {self.host}"
            )
        self.rx_queue.append(pkt)
        self._c_pkts_recv.add()
        self._c_bytes_recv.add(pkt.wire_bytes)
        if self._arrival_waiters:
            waiters, self._arrival_waiters = self._arrival_waiters, []
            for ev in waiters:
                ev.succeed(None)

    def poll(self) -> Optional[Packet]:
        """Harvest one received packet, if any (no cost charged here)."""
        if self.rx_queue:
            return self.rx_queue.popleft()
        return None

    def wait_arrival(self) -> Event:
        """Event that fires when the receive queue becomes non-empty.

        If packets are already pending the event fires immediately, so a
        progress loop built on this never sleeps through work.
        """
        ev = Event(self.env)
        if self.rx_queue:
            ev.succeed(None)
        else:
            self._arrival_waiters.append(ev)
        return ev

    # ------------------------------------------------------------------
    # RDMA registration
    # ------------------------------------------------------------------
    def register(self, nbytes: int, label: str = "") -> RegisteredBuffer:
        buf = RegisteredBuffer(self.host, nbytes, label=label)
        self._registered[buf.rkey] = buf
        return buf

    def deregister(self, buf: RegisteredBuffer) -> None:
        buf.revoke()
        self._registered.pop(buf.rkey, None)

    @property
    def tx_outstanding(self) -> int:
        return self._tx_outstanding


class Fabric:
    """The interconnect: one NIC per host, a shared cost model."""

    def __init__(
        self,
        env: Environment,
        num_hosts: int,
        machine: MachineModel,
        stats_prefix: str = "fabric",
    ):
        if num_hosts < 1:
            raise SimulationError("fabric needs at least one host")
        self.env = env
        self.num_hosts = num_hosts
        self.machine = machine
        self.stats = StatRegistry(stats_prefix)
        self._faults = None
        self._obs = None
        self._profiler = None
        self._commstats = None
        self._nics = [
            Nic(env, self, h, machine.nic, StatRegistry(f"{stats_prefix}.nic{h}"))
            for h in range(num_hosts)
        ]

    # The optional contexts are properties so that attaching (or
    # detaching) one rebinds every NIC's per-packet entry points — the
    # hooks cost literally nothing when off, instead of a None-check
    # chain on every packet.  Setter order doesn't matter; rebinding is
    # idempotent.

    @property
    def faults(self):
        """Optional :class:`repro.faults.FaultInjector`; ``None`` keeps
        every injection hook a no-op."""
        return self._faults

    @faults.setter
    def faults(self, value) -> None:
        self._faults = value
        for n in self._nics:
            n._rebind()

    @property
    def obs(self):
        """Optional :class:`repro.obs.ObsContext` (message-lifecycle
        tracing + queue probes); ``None`` keeps every hook a no-op.
        Pure observation — never advances time or mutates state."""
        return self._obs

    @obs.setter
    def obs(self, value) -> None:
        self._obs = value
        for n in self._nics:
            n._rebind()

    @property
    def profiler(self):
        """Optional :class:`repro.obs.profile.ProfileContext` (host-side
        region profiler + deterministic work counters); ``None`` keeps
        every hook a no-op.  Same contract as ``obs``."""
        return self._profiler

    @profiler.setter
    def profiler(self, value) -> None:
        self._profiler = value
        for n in self._nics:
            n._rebind()

    @property
    def commstats(self):
        """Optional :class:`repro.obs.commstats.CommStatsContext`
        (per-(src, dst, kind) traffic matrices + size histograms);
        ``None`` keeps every hook a no-op.  Same contract as ``obs``:
        pure observation, bit-identical runs."""
        return self._commstats

    @commstats.setter
    def commstats(self, value) -> None:
        self._commstats = value
        for n in self._nics:
            n._rebind()

    def nic(self, host: int) -> Nic:
        if not 0 <= host < self.num_hosts:
            raise SimulationError(f"no such host: {host}")
        return self._nics[host]

    def total(self, counter: str) -> int:
        """Sum a per-NIC counter across all hosts."""
        return sum(n.stats.counter_value(counter) for n in self._nics)
