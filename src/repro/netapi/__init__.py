"""Low-level network API shared by every communication layer.

This is the simulated analogue of the thin layer the paper builds LCI on
(psm2 on Omni-Path, ibverbs RC on Infiniband): packets
(:mod:`repro.netapi.packet`) and per-host NIC endpoints exposing the
``lc_send`` / ``lc_put`` / ``lc_progress`` primitives of Section III-D
(:mod:`repro.netapi.nic`).  The simulated MPI implementation in
:mod:`repro.mpi` is deliberately built on this *same* API so that the MPI
vs. LCI comparison isolates software semantics, exactly as on real NICs.
"""

from repro.netapi.packet import Packet, PacketType
from repro.netapi.nic import Nic, Fabric, RegisteredBuffer

__all__ = ["Packet", "PacketType", "Nic", "Fabric", "RegisteredBuffer"]
