"""Wire packets.

A :class:`Packet` is the unit the simulated fabric moves between hosts.
Payloads are carried as opaque Python objects (the graph runtimes put real
serialized update blobs in them, so algorithm correctness is end-to-end),
while ``size`` carries the number of *simulated* bytes used for all timing.

Packet types follow Section III-D of the paper:

* ``EGR``  — eager packet carrying the data inline (short protocol).
* ``RTS``  — ready-to-send: rendezvous control packet from the sender,
  advertising the source buffer.
* ``RTR``  — ready-to-receive: rendezvous control packet from the receiver,
  advertising the destination buffer.
* ``RDMA`` — the bulk transfer performed by ``lc_put`` (RDMA write with
  completion notification at the target).

The MPI layers reuse the same wire packets with their own headers stored in
``meta`` (tags, communicator context, window/offset for RMA), which mirrors
how real MPIs layer matching information over the raw transport.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["PacketType", "Packet", "CONTROL_PACKET_BYTES", "PACKET_HEADER_BYTES"]

#: Simulated size of a control-only packet (RTS/RTR): one cache line of
#: header plus addressing information.
CONTROL_PACKET_BYTES = 64

#: Header bytes prepended to every data packet on the wire.
PACKET_HEADER_BYTES = 32


class PacketType(enum.Enum):
    EGR = "EGR"
    RTS = "RTS"
    RTR = "RTR"
    RDMA = "RDMA"
    #: Delivery acknowledgement of LCI's ack/retransmit recovery
    #: protocol (only on the wire when a fault plan is installed).
    ACK = "ACK"

    def __repr__(self) -> str:
        return f"PacketType.{self.name}"


_packet_ids = itertools.count()


@dataclass
class Packet:
    """A message descriptor moving through the simulated fabric."""

    ptype: PacketType
    src: int
    dst: int
    tag: int
    #: Simulated payload bytes (excluding header overhead).
    size: int
    #: The actual data object (ignored by the fabric, used by receivers).
    payload: Any = None
    #: Layer-specific header fields (MPI context id, RMA window/offset,
    #: rendezvous buffer handles, ...).
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Unique id, for tracing and deterministic tie-breaking in tests.
    uid: int = field(default_factory=lambda: next(_packet_ids))
    #: Set by the LCI layer: the request this packet is tied to.
    request: Optional[Any] = None
    #: For pool-managed packets: the owning pool, so frees return home.
    pool: Optional[Any] = None

    @property
    def wire_bytes(self) -> int:
        """Bytes the fabric serializes for this packet."""
        if self.ptype in (PacketType.RTS, PacketType.RTR, PacketType.ACK):
            return CONTROL_PACKET_BYTES
        return self.size + PACKET_HEADER_BYTES

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.uid} {self.ptype.name} {self.src}->{self.dst} "
            f"tag={self.tag} size={self.size})"
        )
