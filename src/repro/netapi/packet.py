"""Wire packets.

A :class:`Packet` is the unit the simulated fabric moves between hosts.
Payloads are carried as opaque Python objects (the graph runtimes put real
serialized update blobs in them, so algorithm correctness is end-to-end),
while ``size`` carries the number of *simulated* bytes used for all timing.

Packet types follow Section III-D of the paper:

* ``EGR``  — eager packet carrying the data inline (short protocol).
* ``RTS``  — ready-to-send: rendezvous control packet from the sender,
  advertising the source buffer.
* ``RTR``  — ready-to-receive: rendezvous control packet from the receiver,
  advertising the destination buffer.
* ``RDMA`` — the bulk transfer performed by ``lc_put`` (RDMA write with
  completion notification at the target).

The MPI layers reuse the same wire packets with their own headers stored in
``meta`` (tags, communicator context, window/offset for RMA), which mirrors
how real MPIs layer matching information over the raw transport.

Packets are ``__slots__`` records with a class-level free-list
(:meth:`Packet.alloc` / :meth:`Packet.recycle`): the per-message object
churn is one of the simulator's dominant costs, and recycling a dead
descriptor is two list ops versus a full allocate/initialize/collect
cycle.  Recycling is strictly opt-in — only call sites that can prove the
descriptor is dead (no fault injector duplicating deliveries, no tracer
holding a reference) hand packets back; everything else just drops them
and the GC does what it always did.  ``uid`` stays globally unique across
reuse, so traces and tie-breaks never alias.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, List, Optional

__all__ = ["PacketType", "Packet", "CONTROL_PACKET_BYTES", "PACKET_HEADER_BYTES"]

#: Simulated size of a control-only packet (RTS/RTR): one cache line of
#: header plus addressing information.
CONTROL_PACKET_BYTES = 64

#: Header bytes prepended to every data packet on the wire.
PACKET_HEADER_BYTES = 32


class PacketType(enum.Enum):
    EGR = "EGR"
    RTS = "RTS"
    RTR = "RTR"
    RDMA = "RDMA"
    #: Delivery acknowledgement of LCI's ack/retransmit recovery
    #: protocol (only on the wire when a fault plan is installed).
    ACK = "ACK"

    def __repr__(self) -> str:
        return f"PacketType.{self.name}"


_packet_ids = itertools.count()

_CONTROL_TYPES = (PacketType.RTS, PacketType.RTR, PacketType.ACK)


class Packet:
    """A message descriptor moving through the simulated fabric."""

    __slots__ = ("ptype", "src", "dst", "tag", "size", "payload", "meta",
                 "uid", "request", "pool", "slot")

    #: Dead descriptors awaiting reuse (see module docstring).
    _free: List["Packet"] = []

    def __init__(
        self,
        ptype: PacketType,
        src: int,
        dst: int,
        tag: int,
        #: Simulated payload bytes (excluding header overhead).
        size: int,
        #: The actual data object (ignored by the fabric, used by receivers).
        payload: Any = None,
        #: Layer-specific header fields (MPI context id, RMA window/offset,
        #: rendezvous buffer handles, ...).
        meta: Optional[Dict[str, Any]] = None,
        #: Unique id, for tracing and deterministic tie-breaking in tests.
        uid: Optional[int] = None,
        #: Set by the LCI layer: the request this packet is tied to.
        request: Optional[Any] = None,
        #: For pool-managed packets: the owning pool, so frees return home.
        pool: Optional[Any] = None,
    ):
        self.ptype = ptype
        self.src = src
        self.dst = dst
        self.tag = tag
        self.size = size
        self.payload = payload
        self.meta = {} if meta is None else meta
        self.uid = next(_packet_ids) if uid is None else uid
        self.request = request
        self.pool = pool
        #: Owning pool's descriptor-slot index, or -1 for unpooled
        #: packets (see :mod:`repro.lci.packet_pool`).
        self.slot = -1

    @classmethod
    def alloc(
        cls,
        ptype: PacketType,
        src: int,
        dst: int,
        tag: int,
        size: int,
        payload: Any = None,
    ) -> "Packet":
        """A packet from the free-list (or fresh), with a fresh ``uid``."""
        free = cls._free
        if free:
            pkt = free.pop()
            pkt.ptype = ptype
            pkt.src = src
            pkt.dst = dst
            pkt.tag = tag
            pkt.size = size
            pkt.payload = payload
            if pkt.meta:
                pkt.meta.clear()
            pkt.uid = next(_packet_ids)
            pkt.request = None
            pkt.pool = None
            return pkt
        return cls(ptype, src, dst, tag, size, payload=payload)

    def recycle(self) -> None:
        """Hand a provably-dead descriptor back to the free-list.

        Caller contract: no live reference remains anywhere (fabric,
        queues, requests, traces).  Payload and request references are
        dropped eagerly so recycling never extends object lifetimes.
        """
        self.payload = None
        self.request = None
        self.pool = None
        self.slot = -1
        Packet._free.append(self)

    @property
    def wire_bytes(self) -> int:
        """Bytes the fabric serializes for this packet."""
        if self.ptype in _CONTROL_TYPES:
            return CONTROL_PACKET_BYTES
        return self.size + PACKET_HEADER_BYTES

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.uid} {self.ptype.name} {self.src}->{self.dst} "
            f"tag={self.tag} size={self.size})"
        )
