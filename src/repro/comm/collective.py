"""BSP round synchronization: a simulation barrier and an allreducer.

Termination detection (does any host still have active work?) is part of
the BSP round structure of both Gemini and Abelian, and it is *identical*
across the three communication layers under study.  To keep it from
confounding the layer comparison, the engines use these primitives, which
synchronize host processes exactly and charge an analytic
dissemination-barrier cost — ``ceil(log2 p)`` rounds of one small-message
exchange each — the same for every layer.
"""

from __future__ import annotations

import math
from typing import List

from repro.sim.engine import Environment, Event
from repro.sim.machine import MachineModel

__all__ = ["SimBarrier", "AllReducer", "barrier_cost"]


def barrier_cost(machine: MachineModel, num_hosts: int) -> float:
    """Analytic cost of a dissemination barrier over small messages."""
    if num_hosts <= 1:
        return 0.0
    rounds = math.ceil(math.log2(num_hosts))
    per_round = (
        machine.nic.send_overhead
        + machine.nic.latency
        + machine.nic.recv_overhead
    )
    return rounds * per_round


class SimBarrier:
    """Reusable barrier for ``n`` simulated host processes."""

    def __init__(self, env: Environment, n: int, machine: MachineModel):
        self.env = env
        self.n = n
        self.cost = barrier_cost(machine, n)
        self._count = 0
        self._generation = 0
        self._release: Event = Event(env)

    def arrive(self):
        """Generator: block until all ``n`` processes arrive."""
        gen = self._generation
        self._count += 1
        if self._count == self.n:
            self._count = 0
            self._generation += 1
            release, self._release = self._release, Event(self.env)
            release.succeed(None)
            if self.cost > 0:
                yield self.cost
            return
        release = self._release
        yield release
        if self.cost > 0:
            yield self.cost


class AllReducer:
    """Barrier-synchronized sum over per-host contributions.

    Each host calls ``value = yield from ar.allreduce_sum(host, x)``;
    all hosts receive the global sum for that round.
    """

    def __init__(self, env: Environment, n: int, machine: MachineModel):
        self.env = env
        self.n = n
        self.barrier = SimBarrier(env, n, machine)
        self._accum: List[float] = [0.0]
        self._contributed = 0
        self._result: List[float] = [0.0]

    def allreduce_sum(self, host: int, value):
        self._accum[0] += value
        self._contributed += 1
        if self._contributed == self.n:
            self._result[0] = self._accum[0]
            self._accum[0] = 0.0
            self._contributed = 0
        yield from self.barrier.arrive()
        return self._result[0]
