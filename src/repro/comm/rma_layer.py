"""MPI-RMA communication layer (Section III-C).

One-sided variant of the Abelian runtime: instead of send/recv matching,
each host preallocates **worst-case-sized** window buffers (one per
possible origin, per pattern, per datatype — sized as if *all* nodes were
active) and rounds proceed with generalized active-target PSCW epochs:

* ``phase_begin`` — ``MPI_Win_post`` (expose to expected origins) and
  ``MPI_Win_start`` (open access to targets);
* ``send`` — ``MPI_Put`` of the gathered blob into our slot at the target;
* ``flush`` — ``MPI_Win_complete`` after all puts are locally complete;
* ``collect`` — fine-grained per-origin waits: the host scatters each
  origin's buffer as soon as that origin's COMPLETE arrives (not a
  collective fence — the paper rejects ``MPI_Win_fence`` as too
  restrictive);
* ``phase_end`` — close the exposure epoch and release staging buffers.

A dedicated progress thread continuously polls the library so RMA
operations progress while the main thread computes; both threads issue
MPI calls, so this layer requires ``MPI_THREAD_MULTIPLE`` (and pays its
lock on every call).

Window creation time is recorded separately (``setup_seconds``) because
the paper excludes it from the MPI-RMA results.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.comm.layer_base import CommLayer
from repro.comm.serialization import HEADER_BYTES, UpdateBlob
from repro.mpi.config import MpiConfig, ThreadMode
from repro.mpi.endpoint import MpiEndpoint
from repro.mpi.presets import default_mpi
from repro.mpi.rma import MpiWindow
from repro.mpi.world import MpiWorld
from repro.netapi.nic import Fabric
from repro.sim.engine import Environment, Interrupt
from repro.sim.machine import MachineModel

__all__ = ["RmaCommLayer"]


def worst_case_blob_bytes(pair_len: int, field_bytes: int) -> int:
    """Upper bound on a blob for a sync pair: all nodes active."""
    bitset = (pair_len + 7) // 8
    return HEADER_BYTES + bitset + pair_len * field_bytes


class RmaCommLayer(CommLayer):
    name = "mpi-rma"
    #: The main compute thread issues the puts (Section III-C): serial.
    parallel_send = False
    #: Scatters read NIC-DMA-written window memory: cache-cold.
    receive_buffer_cold = True

    def __init__(
        self,
        env: Environment,
        host: int,
        machine: MachineModel,
        endpoint: MpiEndpoint,
    ):
        super().__init__(env, host, machine)
        self.ep = endpoint
        self.obs = getattr(endpoint.nic.fabric, "obs", None)
        self.commstats = getattr(endpoint.nic.fabric, "commstats", None)
        #: pattern name -> MpiWindow (shared across all hosts' layers).
        self.windows: Dict[str, MpiWindow] = {}
        self._staged: Dict[object, int] = {}  # phase -> staged bytes
        self.setup_seconds = 0.0
        self._stopping = False
        self._progress_proc = env.process(
            self._progress_thread(), name=f"rma-progress-{host}"
        )

    # ------------------------------------------------------------------
    @classmethod
    def create_world(
        cls,
        env: Environment,
        fabric: Fabric,
        machine: MachineModel,
        mpi_config: Optional[MpiConfig] = None,
    ) -> List["RmaCommLayer"]:
        config = mpi_config or default_mpi()
        world = MpiWorld(env, fabric, config, thread_mode=ThreadMode.MULTIPLE)
        layers = [
            cls(env, h, machine, world.endpoint(h))
            for h in range(fabric.num_hosts)
        ]
        for l in layers:
            l.mpi_world = world
            l._siblings = layers
        return layers

    # ------------------------------------------------------------------
    # Setup: collective window creation with worst-case sizes
    # ------------------------------------------------------------------
    def setup(self, reduce_pairs=None, bcast_pairs=None, field_bytes=8,
              patterns=("reduce", "bcast")):
        """Create one window per pattern (collective; every host calls).

        ``reduce_pairs`` / ``bcast_pairs`` are the partition's SyncPair
        dicts keyed (mirror_host, master_host).  Buffer (o -> t) for the
        reduce window is sized for the (o, t) mirror pair; for the bcast
        window, data flows master -> mirror, so (o -> t) uses the (t, o)
        pair.
        """
        t0 = self.env.now
        specs = []
        if "reduce" in patterns and reduce_pairs is not None:
            specs.append(("reduce", reduce_pairs, False))
        if "bcast" in patterns and bcast_pairs is not None:
            specs.append(("bcast", bcast_pairs, True))
        for pname, pairs, reversed_ in specs:
            win = self._shared_window(pname, pairs, field_bytes, reversed_)
            yield from win.create(self.host)
            self.buf_alloc(win.bytes_allocated(self.host))
        self.setup_seconds = self.env.now - t0

    def _shared_window(self, pname, pairs, field_bytes, reversed_):
        """All hosts must share one MpiWindow object per pattern."""
        registry = self._siblings[0].windows
        win = registry.get(pname)
        if win is None:
            def size_fn(o, t):
                key = (t, o) if reversed_ else (o, t)
                sp = pairs.get(key)
                if sp is None:
                    return 0
                return worst_case_blob_bytes(len(sp), field_bytes)

            win = MpiWindow(
                self.ep._world, size_fn=size_fn, label=f"win-{pname}"
            )
            # The layer's dedicated thread drives progress (Section III-C).
            win.external_progress = True
            registry[pname] = win
        self.windows[pname] = win
        return win

    @staticmethod
    def pattern_of(phase) -> str:
        """Engine phases are tuples (round, pattern, ...); pattern at [1]."""
        if isinstance(phase, tuple) and len(phase) >= 2:
            return phase[1]
        raise ValueError(f"RMA layer needs (round, pattern, ...) phases, got {phase!r}")

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def phase_begin(self, phase, out_peers: Iterable[int],
                    in_peers: Iterable[int]):
        win = self.windows[self.pattern_of(phase)]
        yield from win.post(self.host, in_peers)
        yield from win.start(self.host, out_peers)
        self._staged[phase] = 0

    def send(self, dst: int, blob: UpdateBlob):
        win = self.windows[self.pattern_of(blob.phase)]
        # The origin's gathered buffer must survive until win_complete.
        self.buf_alloc(blob.nbytes)
        self._staged[blob.phase] = self._staged.get(blob.phase, 0) + blob.nbytes
        self.stats.counter("puts").add()
        trace = self.trace_send(dst, blob)
        yield from win.put(self.host, dst, blob.nbytes, payload=blob,
                           trace=trace)

    def flush(self, phase=None):
        """Close the access epoch: all puts flushed, COMPLETEs sent."""
        if phase is None:
            raise ValueError("RMA flush requires the phase")
        win = self.windows[self.pattern_of(phase)]
        yield from win.complete(self.host)

    def collect_some(self, phase, pending: set):
        """Fine-grained: return blobs from origins whose COMPLETE arrived."""
        win = self.windows[self.pattern_of(phase)]
        st = win._state[self.host]
        yield from win._await(
            self.host, lambda: bool(st.completes_seen & pending)
        )
        ready = sorted(st.completes_seen & pending)
        got = []
        for origin in ready:
            payload, _nbytes = yield from win.test_wait(self.host, origin)
            pending.discard(origin)
            if payload is None:
                continue
            blobs = payload if isinstance(payload, list) else [payload]
            for blob in blobs:
                if self.obs is not None:
                    tr = getattr(blob, "trace_id", None)
                    if tr is not None:
                        self.obs.emit(tr, "complete", self.host, src=origin)
                got.append((origin, blob))
        return got

    def collect(self, phase, in_peers: Iterable[int]):
        pending = set(in_peers)
        got = []
        while pending:
            got.extend((yield from self.collect_some(phase, pending)))
        return got

    def phase_end(self, phase):
        win = self.windows[self.pattern_of(phase)]
        win.finish_exposure(self.host)
        staged = self._staged.pop(phase, 0)
        if staged:
            self.buf_free(staged)
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    def _progress_thread(self):
        """Continuously polls the library (the paper's dedicated thread
        ensuring forward progress for RMA operations).

        The thread spins *inside* the progress engine rather than
        re-entering the library per packet, so per-arrival cost is the
        progress pass plus packet harvesting — no per-call overhead or
        lock round trip (async progress threads use the library's
        internal fine-grained synchronization).
        """
        while not self._stopping:
            try:
                yield self.ep.nic.wait_arrival()
                yield from self.ep._progress_locked()
            except Interrupt:
                return

    def shutdown(self) -> None:
        self._stopping = True
        if self._progress_proc.is_alive:
            self._progress_proc.interrupt("stop")
        # MPI_Finalize audit (no-op unless sanitizers are armed).
        self.ep.finalize_check()
