"""The CommLayer interface shared by the MPI-Probe, MPI-RMA and LCI layers.

One CommLayer instance exists per host.  The BSP engine drives it from
the host's simulated process:

* ``setup(...)`` (generator) — one-time initialization run before the
  first round (RMA creates its worst-case windows here).
* ``phase_begin(phase, out_peers, in_peers)`` (generator) — open the
  round's communication phase (RMA opens PSCW epochs).
* ``send(dst, blob)`` (generator) — hand one gathered update blob to the
  layer for delivery.
* ``collect(phase, in_peers)`` (generator) — yield-until-complete: block
  until every expected peer's blob for ``phase`` arrived; returns a list
  of (src, blob) **in arrival order** (the engine scatters in that order,
  as the paper's runtime processes messages "in an arbitrary order as
  they arrive").
* ``phase_end(phase)`` (generator) — close the phase (RMA closes epochs).
* ``shutdown()`` — stop helper processes at the end of the run.

Buffer-footprint accounting (Fig. 5) is built into the base class: layers
call :meth:`buf_alloc` / :meth:`buf_free` around every communication
buffer they manage, and the harness reads :attr:`footprint` peaks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.comm.serialization import UpdateBlob
from repro.sim.engine import Environment, Event
from repro.sim.machine import MachineModel
from repro.sim.monitor import StatRegistry

__all__ = ["CommLayer", "LAYER_NAMES", "make_layers"]

LAYER_NAMES = ("lci", "mpi-probe", "mpi-rma")


class CommLayer:
    """Base class: phase demultiplexing and footprint accounting."""

    name = "base"
    #: True when compute threads can initiate sends concurrently (LCI's
    #: lock-free SEND-ENQ; the probe layer's MPSC enqueue).  False when a
    #: single thread must issue them (MPI-RMA: the main compute thread
    #: performs the RMA operations).  The engine overlaps send initiation
    #: across its compute threads when this is set.
    parallel_send = True
    #: True when received data is scattered out of large, cache-cold
    #: buffers (MPI-RMA's DMA-written preallocated windows).  LCI's small
    #: recycled pool and the probe layer's just-copied bounce buffers are
    #: warm.  The engine multiplies deserialization cost by the machine's
    #: ``cold_read_factor`` when set.
    receive_buffer_cold = False

    def __init__(self, env: Environment, host: int, machine: MachineModel):
        self.env = env
        self.host = host
        self.machine = machine
        self.stats = StatRegistry(f"{self.name}.host{host}")
        self.footprint = self.stats.peak("comm_buffer_bytes")
        #: Optional ObsContext; subclasses overwrite this with the
        #: fabric's context at construction (discovery pattern).
        self.obs = None
        #: Optional CommStatsContext, discovered the same way; records
        #: the blob-level (src, dst, phase) traffic matrix.
        self.commstats = None
        #: phase -> list of (src, blob) already received but not collected
        self._stash: Dict[object, List[Tuple[int, UpdateBlob]]] = {}
        self._stash_waiters: Dict[object, Event] = {}

    # ------------------------------------------------------------------
    # Footprint accounting
    # ------------------------------------------------------------------
    def buf_alloc(self, nbytes: int) -> None:
        self.footprint.add(nbytes)

    def buf_free(self, nbytes: int) -> None:
        self.footprint.sub(nbytes)

    # ------------------------------------------------------------------
    # Observability helper
    # ------------------------------------------------------------------
    def trace_send(self, dst: int, blob: UpdateBlob):
        """Mint a trace id for ``blob`` and emit its ``api`` event.

        Returns the id (or ``None`` with obs off).  The id is stored on
        the blob (``blob.trace_id``) so the receive side can emit the
        terminal event for the same trace.

        This is also the blob-level commstats tap: every layer calls it
        exactly once per ``send()``, so the recorded blob counts/bytes
        telescope to ``RunMetrics.blobs_sent``/``payload_bytes_sent``.
        """
        commstats = self.commstats
        if commstats is not None:
            commstats.on_blob(self.host, dst, blob)
        if self.obs is None:
            return None
        trace = self.obs.new_trace(self.name, self.host, dst)
        blob.trace_id = trace
        args = {"dst": dst, "bytes": blob.nbytes}
        phase = blob.phase
        if isinstance(phase, tuple) and len(phase) >= 2:
            args["round"] = phase[0]
            args["pattern"] = phase[1]
        self.obs.emit(trace, "api", self.host, **args)
        return trace

    # ------------------------------------------------------------------
    # Inbound demultiplexing helpers (used by subclasses)
    # ------------------------------------------------------------------
    def _deliver(self, src: int, blob: UpdateBlob) -> None:
        phase = blob.phase
        self._stash.setdefault(phase, []).append((src, blob))
        waiter = self._stash_waiters.pop(phase, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(None)

    def _wait_phase_delivery(self, phase: object) -> Event:
        ev = self._stash_waiters.get(phase)
        if ev is None or ev.triggered:
            ev = Event(self.env)
            if self._stash.get(phase):
                ev.succeed(None)
            else:
                self._stash_waiters[phase] = ev
        return ev

    def _take_phase(self, phase: object) -> List[Tuple[int, UpdateBlob]]:
        got = self._stash.pop(phase, [])
        return got

    # ------------------------------------------------------------------
    # Interface (generators)
    # ------------------------------------------------------------------
    def setup(self, reduce_pairs=None, bcast_pairs=None, field_bytes=8,
              patterns=()):
        """One-time initialization (default: nothing)."""
        return
        yield  # pragma: no cover

    def phase_begin(self, phase, out_peers: Iterable[int],
                    in_peers: Iterable[int]):
        return
        yield  # pragma: no cover

    def send(self, dst: int, blob: UpdateBlob):
        raise NotImplementedError

    def collect(self, phase, in_peers: Iterable[int]):
        """Default collect: drain the stash as deliveries arrive."""
        expected = set(in_peers)
        got: List[Tuple[int, UpdateBlob]] = []
        seen = set()
        while seen != expected:
            items = self._take_phase(phase)
            if not items:
                yield self._wait_phase_delivery(phase)
                continue
            for src, blob in items:
                if src in seen:
                    raise RuntimeError(
                        f"{self.name} host {self.host}: duplicate blob from "
                        f"{src} in phase {phase!r}"
                    )
                seen.add(src)
                got.append((src, blob))
        return got

    def collect_some(self, phase, pending: set):
        """Block until at least one blob for ``phase`` arrives from a host
        in ``pending``; returns the newly arrived (src, blob) list and
        removes those sources from ``pending`` (mutates the set)."""
        while True:
            items = self._take_phase(phase)
            if items:
                for src, _b in items:
                    if src not in pending:
                        raise RuntimeError(
                            f"{self.name} host {self.host}: unexpected blob "
                            f"from {src} in phase {phase!r}"
                        )
                    pending.discard(src)
                return items
            yield self._wait_phase_delivery(phase)

    def phase_end(self, phase):
        return
        yield  # pragma: no cover

    def consume(self, blob: UpdateBlob) -> None:
        """Engine notification: ``blob`` has been scattered; the layer may
        release its receive buffer (default: nothing to release)."""

    def flush(self, phase=None):
        """Push out anything the layer is still aggregating (generator).

        RMA closes its access epoch here and therefore needs ``phase``;
        the other layers ignore it.
        """
        return
        yield  # pragma: no cover

    def shutdown(self) -> None:
        pass


def make_layers(
    name: str,
    env: Environment,
    fabric,
    machine: MachineModel,
    **kwargs,
) -> List["CommLayer"]:
    """Factory: one layer instance per host, fully wired.

    ``name`` is one of :data:`LAYER_NAMES`.  Extra kwargs pass through to
    the layer constructor (e.g. ``mpi_config=``, ``lci_config=``).
    """
    from repro.comm.lci_layer import LciCommLayer
    from repro.comm.probe_layer import ProbeCommLayer
    from repro.comm.rma_layer import RmaCommLayer

    if name == "lci":
        return LciCommLayer.create_world(env, fabric, machine, **kwargs)
    if name == "mpi-probe":
        return ProbeCommLayer.create_world(env, fabric, machine, **kwargs)
    if name == "mpi-rma":
        return RmaCommLayer.create_world(env, fabric, machine, **kwargs)
    raise ValueError(f"unknown comm layer {name!r}; pick from {LAYER_NAMES}")
