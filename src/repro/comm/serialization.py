"""Update-blob serialization with minimized metadata.

Abelian "minimizes the communication meta-data while synchronizing only
the updated labels".  A blob carries the values of the *updated* subset
of one :class:`~repro.graph.partition.proxies.SyncPair`, identified by
positions within the pair's aligned index arrays.  The metadata encoding
is chosen per message:

* **bitset** — one bit per pair element; wins when many elements updated;
* **index list** — 4 bytes per updated element; wins when few updated.

Both sides know the pair's length, so the decoder needs no further
context.  The payload carries real NumPy arrays (so scatters apply real
updates), while ``nbytes`` is the simulated wire size used for timing.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UpdateBlob", "pack_updates", "unpack_updates", "HEADER_BYTES"]

#: Per-blob header: round id, pattern id, field id, count.
HEADER_BYTES = 16


class UpdateBlob:
    """A serialized batch of label updates for one sync pair.

    A plain ``__slots__`` record: one blob is built per (pair, field)
    batch per round, which makes this one of the hottest small objects
    in a run.
    """

    __slots__ = (
        "positions", "values", "pair_len", "meta_encoding", "nbytes",
        "phase", "trace_id",
    )

    def __init__(
        self,
        positions: np.ndarray,
        values: np.ndarray,
        pair_len: int,
        meta_encoding: str,
        nbytes: int,
        phase: object = None,
    ):
        #: Positions (indices into the SyncPair arrays) of updated elements.
        self.positions = positions
        #: Updated values, aligned with ``positions``.
        self.values = values
        #: Length of the sync pair (for bitset sizing on the decode side).
        self.pair_len = pair_len
        #: Metadata encoding chosen: "bitset" or "indices".
        self.meta_encoding = meta_encoding
        #: Simulated wire bytes of the whole blob.
        self.nbytes = nbytes
        #: Phase key for demultiplexing at the receiver (round, pattern, ...).
        self.phase = phase
        #: Observability trace id, stamped by CommLayer.trace_send.
        self.trace_id = None

    @property
    def count(self) -> int:
        return len(self.positions)

    def __repr__(self) -> str:
        return (
            f"UpdateBlob(count={len(self.positions)}, "
            f"pair_len={self.pair_len}, enc={self.meta_encoding!r}, "
            f"nbytes={self.nbytes}, phase={self.phase!r})"
        )


def metadata_bytes(num_updates: int, pair_len: int) -> (int, str):
    """Size and name of the cheaper metadata encoding."""
    bitset = (pair_len + 7) // 8
    indices = 4 * num_updates
    if bitset <= indices:
        return bitset, "bitset"
    return indices, "indices"


def pack_updates(
    positions: np.ndarray,
    values: np.ndarray,
    pair_len: int,
    field_bytes: int,
    phase: object = None,
) -> UpdateBlob:
    """Build the wire blob for one (pair, field) update batch."""
    positions = np.asarray(positions)
    values = np.asarray(values)
    if len(positions) != len(values):
        raise ValueError("positions/values length mismatch")
    if len(positions) and positions.max() >= pair_len:
        raise ValueError("update position beyond pair length")
    meta, encoding = metadata_bytes(len(positions), pair_len)
    nbytes = HEADER_BYTES + meta + len(values) * field_bytes
    return UpdateBlob(
        positions=positions,
        values=values,
        pair_len=pair_len,
        meta_encoding=encoding,
        nbytes=nbytes,
        phase=phase,
    )


def unpack_updates(blob: UpdateBlob):
    """Decode a blob: returns (positions, values).

    Decoding is structurally trivial here because the payload carries the
    arrays; the *cost* of deserialization is charged by the scatter step
    (per-item unpack + memcpy), not by this function.
    """
    return blob.positions, blob.values


def pack_cost(cpu, num_updates: int, nbytes: int) -> float:
    """Simulated seconds one thread needs to gather/serialize a blob."""
    return num_updates * cpu.per_item_pack_cost + cpu.memcpy_time(nbytes)


def unpack_cost(cpu, num_updates: int, nbytes: int) -> float:
    """Simulated seconds one thread needs to scatter/deserialize a blob."""
    return num_updates * cpu.per_item_pack_cost + cpu.memcpy_time(nbytes)
