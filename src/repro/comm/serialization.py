"""Update-blob serialization with minimized metadata.

Abelian "minimizes the communication meta-data while synchronizing only
the updated labels".  A blob carries the values of the *updated* subset
of one :class:`~repro.graph.partition.proxies.SyncPair`, identified by
positions within the pair's aligned index arrays.  The metadata encoding
is chosen per message:

* **bitset** — one bit per pair element; wins when many elements updated;
* **index list** — 4 bytes per updated element; wins when few updated.

Both sides know the pair's length, so the decoder needs no further
context.  The payload carries real NumPy arrays (so scatters apply real
updates), while ``nbytes`` is the simulated wire size used for timing.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

__all__ = ["UpdateBlob", "pack_updates", "unpack_updates", "HEADER_BYTES"]

#: Per-blob header: round id, pattern id, field id, count.
HEADER_BYTES = 16


@dataclass
class UpdateBlob:
    """A serialized batch of label updates for one sync pair."""

    #: Positions (indices into the SyncPair arrays) of updated elements.
    positions: np.ndarray
    #: Updated values, aligned with ``positions``.
    values: np.ndarray
    #: Length of the sync pair (for bitset sizing on the decode side).
    pair_len: int
    #: Metadata encoding chosen: "bitset" or "indices".
    meta_encoding: str
    #: Simulated wire bytes of the whole blob.
    nbytes: int
    #: Phase key for demultiplexing at the receiver (round, pattern, ...).
    phase: object = None

    @property
    def count(self) -> int:
        return len(self.positions)


def metadata_bytes(num_updates: int, pair_len: int) -> (int, str):
    """Size and name of the cheaper metadata encoding."""
    bitset = (pair_len + 7) // 8
    indices = 4 * num_updates
    if bitset <= indices:
        return bitset, "bitset"
    return indices, "indices"


def pack_updates(
    positions: np.ndarray,
    values: np.ndarray,
    pair_len: int,
    field_bytes: int,
    phase: object = None,
) -> UpdateBlob:
    """Build the wire blob for one (pair, field) update batch."""
    positions = np.asarray(positions)
    values = np.asarray(values)
    if len(positions) != len(values):
        raise ValueError("positions/values length mismatch")
    if len(positions) and positions.max() >= pair_len:
        raise ValueError("update position beyond pair length")
    meta, encoding = metadata_bytes(len(positions), pair_len)
    nbytes = HEADER_BYTES + meta + len(values) * field_bytes
    return UpdateBlob(
        positions=positions,
        values=values,
        pair_len=pair_len,
        meta_encoding=encoding,
        nbytes=nbytes,
        phase=phase,
    )


def unpack_updates(blob: UpdateBlob):
    """Decode a blob: returns (positions, values).

    Decoding is structurally trivial here because the payload carries the
    arrays; the *cost* of deserialization is charged by the scatter step
    (per-item unpack + memcpy), not by this function.
    """
    return blob.positions, blob.values


def pack_cost(cpu, num_updates: int, nbytes: int) -> float:
    """Simulated seconds one thread needs to gather/serialize a blob."""
    return num_updates * cpu.per_item_pack_cost + cpu.memcpy_time(nbytes)


def unpack_cost(cpu, num_updates: int, nbytes: int) -> float:
    """Simulated seconds one thread needs to scatter/deserialize a blob."""
    return num_updates * cpu.per_item_pack_cost + cpu.memcpy_time(nbytes)
