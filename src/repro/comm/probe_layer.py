"""MPI-Probe communication layer (Section III-B) — the baseline.

Structure (Fig. 2 plus the buffered network layer):

* Compute threads ``send()`` gathered blobs into a thread-safe
  multi-producer single-consumer queue (one atomic per enqueue).
* A **dedicated communication thread** (MPI_THREAD_FUNNELED — only it
  calls MPI) drains the queue, *aggregates* items smaller than the eager
  limit per destination — flushing an aggregate when it exceeds the eager
  limit, when its oldest item times out, or on an explicit end-of-phase
  flush — and pushes aggregates out with ``MPI_Isend``.
* For receives there is no prior size information, so the thread calls
  ``MPI_Iprobe`` with wildcards, then ``MPI_Irecv``s the reported
  message.  ``MPI_Test`` reclaims completed requests.  Everything is
  non-blocking to multiplex resources and avoid exhaustion.

The buffered layer exists to provide the back pressure MPI lacks: it
keeps the number of concurrently outstanding eager sends bounded so the
library never hits its resource-exhaustion failure mode (which
:class:`~repro.mpi.exceptions.MPIResourceExhausted` models; the ablation
benchmark disables the buffering and shows it).

``inline_sends=True`` reproduces *Gemini's* original runtime instead:
compute threads call MPI directly (``MPI_THREAD_MULTIPLE``), paying the
library lock on every call, and the dedicated thread only probes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.comm.layer_base import CommLayer
from repro.comm.serialization import UpdateBlob
from repro.mpi.config import MpiConfig, ThreadMode
from repro.mpi.endpoint import MpiEndpoint
from repro.mpi.presets import default_mpi
from repro.mpi.types import ANY_SOURCE, MpiRequest
from repro.mpi.world import MpiWorld
from repro.netapi.nic import Fabric
from repro.sim.engine import Environment, Event, Interrupt
from repro.sim.machine import MachineModel

__all__ = ["ProbeCommLayer"]

#: MPI tag carrying aggregated data messages.
DATA_TAG = 1

#: Wire overhead of one aggregate frame (item count + per-item lengths).
AGG_FRAME_BYTES = 8


class _Aggregate:
    """Per-destination buffer of small items awaiting flush."""

    __slots__ = ("items", "nbytes", "oldest")

    def __init__(self):
        self.items: List[UpdateBlob] = []
        self.nbytes = 0
        self.oldest: Optional[float] = None


class ProbeCommLayer(CommLayer):
    name = "mpi-probe"

    def __init__(
        self,
        env: Environment,
        host: int,
        machine: MachineModel,
        endpoint: MpiEndpoint,
        flush_timeout: float = 100e-6,
        inline_sends: bool = False,
        buffered: bool = True,
    ):
        super().__init__(env, host, machine)
        self.ep = endpoint
        self.obs = getattr(endpoint.nic.fabric, "obs", None)
        self.commstats = getattr(endpoint.nic.fabric, "commstats", None)
        self.flush_timeout = flush_timeout
        self.inline_sends = inline_sends
        self.buffered = buffered
        self._sendq: List[Tuple[int, UpdateBlob]] = []
        self._sendq_event: Optional[Event] = None
        self._flush_requested = False
        self._agg: Dict[int, _Aggregate] = {}
        self._pending_sends: List[Tuple[MpiRequest, int]] = []  # (req, bytes)
        self._pending_recvs: List[MpiRequest] = []
        self._stopping = False
        self._thread_token = f"comm-thread-{host}"
        self._atomic = machine.cpu.atomic_op
        self._c_blobs_sent = self.stats.counter("blobs_sent")
        self._c_agg_flushed = self.stats.counter("aggregates_flushed")
        self._c_mpi_isends = self.stats.counter("mpi_isends")
        self._c_agg_received = self.stats.counter("aggregates_received")
        self._comm_proc = env.process(
            self._comm_thread(), name=f"probe-comm-{host}"
        )

    # ------------------------------------------------------------------
    @classmethod
    def create_world(
        cls,
        env: Environment,
        fabric: Fabric,
        machine: MachineModel,
        mpi_config: Optional[MpiConfig] = None,
        inline_sends: bool = False,
        buffered: bool = True,
        flush_timeout: float = 100e-6,
    ) -> List["ProbeCommLayer"]:
        config = mpi_config or default_mpi()
        mode = ThreadMode.MULTIPLE if inline_sends else ThreadMode.FUNNELED
        world = MpiWorld(env, fabric, config, thread_mode=mode)
        layers = [
            cls(
                env,
                h,
                machine,
                world.endpoint(h),
                flush_timeout=flush_timeout,
                inline_sends=inline_sends,
                buffered=buffered,
            )
            for h in range(fabric.num_hosts)
        ]
        for l in layers:
            l.mpi_world = world
        return layers

    # ------------------------------------------------------------------
    # Compute-thread side
    # ------------------------------------------------------------------
    def send(self, dst: int, blob: UpdateBlob):
        """Hand a gathered buffer to the communication machinery."""
        self.buf_alloc(blob.nbytes)
        self._c_blobs_sent.add()
        trace = self.trace_send(dst, blob)
        if self.inline_sends:
            # Gemini mode: this thread calls MPI itself (THREAD_MULTIPLE).
            req = yield from self.ep.isend(
                dst, DATA_TAG, blob.nbytes, payload=[blob],
                thread=f"compute-{self.host}", trace=trace,
            )
            req.on_complete(lambda _r, n=blob.nbytes: self.buf_free(n))
            return
        # Enqueue into the MPSC queue: one atomic.
        yield self._atomic
        self._sendq.append((dst, blob))
        self._kick()

    def flush(self, phase=None):
        """Ask the comm thread to push out all aggregates now."""
        self._flush_requested = True
        self._kick()
        return
        yield  # pragma: no cover

    def _kick(self) -> None:
        ev = self._sendq_event
        if ev is not None and not ev.triggered:
            ev.succeed(None)
        self._sendq_event = None

    def consume(self, blob: UpdateBlob) -> None:
        """Engine scattered this received blob; release its buffer."""
        self.buf_free(blob.nbytes)

    # ------------------------------------------------------------------
    # Dedicated communication thread
    # ------------------------------------------------------------------
    def _comm_thread(self):
        env = self.env
        ep = self.ep
        token = self._thread_token
        atomic = self._atomic
        eager_limit = ep.config.eager_limit
        while not self._stopping:
            try:
                did_work = False

                # 1. Drain the MPSC send queue into aggregates.
                while self._sendq:
                    dst, blob = self._sendq.pop(0)
                    yield atomic
                    did_work = True
                    if not self.buffered:
                        yield from self._isend(dst, [blob], blob.nbytes)
                        continue
                    agg = self._agg.setdefault(dst, _Aggregate())
                    agg.items.append(blob)
                    agg.nbytes += blob.nbytes
                    if agg.oldest is None:
                        agg.oldest = env.now
                    tr = getattr(blob, "trace_id", None)
                    if self.obs is not None and tr is not None:
                        self.obs.emit(tr, "agg", self.host,
                                      dst=dst, agg_bytes=agg.nbytes)
                    if agg.nbytes >= eager_limit:
                        yield from self._flush_dst(dst)

                # 2. Flush on request or timeout.
                if self._flush_requested:
                    self._flush_requested = False
                    for dst in list(self._agg):
                        yield from self._flush_dst(dst)
                    did_work = True
                else:
                    for dst, agg in list(self._agg.items()):
                        if (
                            agg.oldest is not None
                            and env.now - agg.oldest >= self.flush_timeout
                        ):
                            yield from self._flush_dst(dst)
                            did_work = True

                # 3. Probe for incoming messages (wildcards; no size info).
                while True:
                    status = yield from ep.iprobe(
                        ANY_SOURCE, DATA_TAG, thread=token
                    )
                    if status is None:
                        break
                    did_work = True
                    self.buf_alloc(status.count)
                    req = yield from ep.irecv(
                        status.source, status.tag, thread=token
                    )
                    if req.done:
                        self._deliver_aggregate(req)
                    else:
                        self._pending_recvs.append(req)

                # 4. MPI_Test pending requests for forward progress.
                still = []
                for req, nbytes in self._pending_sends:
                    done = yield from ep.test(req, thread=token)
                    if done:
                        self.buf_free(nbytes)
                    else:
                        still.append((req, nbytes))
                self._pending_sends = still
                still_r = []
                for req in self._pending_recvs:
                    done = yield from ep.test(req, thread=token)
                    if done:
                        self._deliver_aggregate(req)
                    else:
                        still_r.append(req)
                self._pending_recvs = still_r

                # 5. Idle: sleep until new work or the next flush deadline.
                if not did_work and not self._sendq:
                    waits = [self.ep.nic.wait_arrival()]
                    ev = Event(env)
                    self._sendq_event = ev
                    waits.append(ev)
                    deadline = self._next_flush_deadline()
                    if deadline is not None:
                        waits.append(env.timeout(max(deadline - env.now, 0)))
                    elif self._pending_sends or self._pending_recvs:
                        waits.append(env.timeout(self.flush_timeout))
                    yield env.any_of(waits)
            except Interrupt:
                return

    def _next_flush_deadline(self) -> Optional[float]:
        oldest = [
            a.oldest for a in self._agg.values() if a.oldest is not None
        ]
        if not oldest:
            return None
        return min(oldest) + self.flush_timeout

    def _flush_dst(self, dst: int):
        agg = self._agg.pop(dst, None)
        if agg is None or not agg.items:
            return
        yield from self._isend(dst, agg.items, agg.nbytes)
        self._c_agg_flushed.add()

    def _isend(self, dst: int, items: List[UpdateBlob], nbytes: int):
        msg_trace = None
        if self.obs is not None:
            # The aggregate frame is its own traced message; each member
            # blob links to it with a "bundled" event so the analyzer can
            # split frame latency back onto the blobs it carried.
            msg_trace = self.obs.new_trace(self.name, self.host, dst)
            self.obs.emit(msg_trace, "api", self.host, kind="aggregate",
                          dst=dst, items=len(items), bytes=nbytes)
            for blob in items:
                tr = getattr(blob, "trace_id", None)
                if tr is not None:
                    self.obs.emit(tr, "bundled", self.host, msg=msg_trace)
        req = yield from self.ep.isend(
            dst,
            DATA_TAG,
            nbytes + AGG_FRAME_BYTES * len(items),
            payload=list(items),
            thread=self._thread_token,
            trace=msg_trace,
        )
        self._c_mpi_isends.add()
        if req.done:
            self.buf_free(nbytes)
        else:
            self._pending_sends.append((req, nbytes))

    def _deliver_aggregate(self, req: MpiRequest) -> None:
        # Swap the aggregate-frame accounting for per-blob accounting:
        # each blob's buffer is released individually by consume().
        self.buf_free(req.status.count)
        items: List[UpdateBlob] = req.payload
        for blob in items:
            self.buf_alloc(blob.nbytes)
            if self.obs is not None and not self.inline_sends:
                # Close each member blob's trace (in inline mode the blob
                # trace IS the message trace, already completed by the
                # endpoint — a second terminal event would double-count).
                tr = getattr(blob, "trace_id", None)
                if tr is not None:
                    self.obs.emit(tr, "complete", self.host,
                                  src=req.status.source)
            self._deliver(req.status.source, blob)
        self._c_agg_received.add()

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        self._stopping = True
        if self._comm_proc.is_alive:
            self._comm_proc.interrupt("stop")
        # MPI_Finalize audit (no-op unless sanitizers are armed).
        self.ep.finalize_check()
