"""LCI communication layer (Section III-D).

The thinnest of the three: compute threads talk to the LCI Queue
directly —

* ``send`` retries ``SEND-ENQ`` until the packet pool admits it (back
  pressure instead of crashes), then tracks the request in a completion
  list whose status flags are *free* to check;
* ``collect`` loops ``RECV-DEQ``; eager messages complete instantly,
  rendezvous requests are parked until their flag flips.

The dedicated communication thread is LCI's *communication server*
(started by :class:`~repro.lci.server.LciRuntime`), which also provides
implicit progress — there is no MPI_Test-style call anywhere on this
path.  Memory for communication buffers is the fixed packet pool plus
transient gather/scatter staging, which is why LCI's footprint in Fig. 5
is small, flat across hosts, and an order of magnitude below MPI-RMA's.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.comm.layer_base import CommLayer
from repro.comm.serialization import UpdateBlob
from repro.lci.config import LciConfig
from repro.lci.request import LciRequest
from repro.lci.server import LciRuntime
from repro.netapi.nic import Fabric
from repro.sim.engine import Environment, Event
from repro.sim.machine import MachineModel

__all__ = ["LciCommLayer"]


class LciCommLayer(CommLayer):
    name = "lci"

    def __init__(
        self,
        env: Environment,
        host: int,
        machine: MachineModel,
        runtime: LciRuntime,
    ):
        super().__init__(env, host, machine)
        self.rt = runtime
        self.obs = getattr(runtime.nic.fabric, "obs", None)
        self.commstats = getattr(runtime.nic.fabric, "commstats", None)
        #: Rendezvous receive requests not yet complete, keyed by request.
        self._pending_recvs: List[LciRequest] = []
        # Fixed pool memory is communication-buffer memory (Fig. 5).
        self.buf_alloc(self.rt.pool.bytes_allocated())
        self._drain_proc = None

    # ------------------------------------------------------------------
    @classmethod
    def create_world(
        cls,
        env: Environment,
        fabric: Fabric,
        machine: MachineModel,
        lci_config: Optional[LciConfig] = None,
    ) -> List["LciCommLayer"]:
        runtimes = LciRuntime.create_world(env, fabric, config=lci_config)
        return [
            cls(env, h, machine, runtimes[h])
            for h in range(fabric.num_hosts)
        ]

    # ------------------------------------------------------------------
    def send(self, dst: int, blob: UpdateBlob):
        """SEND-ENQ with retry on pool exhaustion.

        While the pool is dry the sender *services the receive side*
        (RECV-DEQ) instead of only waiting: consuming arrivals returns
        their packet budgets to the pool.  Without this interleaving a
        starved pool deadlocks — every budget parked on unconsumed
        arrivals while all threads spin on sends — which is exactly why
        the paper's communication loop "interleaves sending and
        receiving".
        """
        self.buf_alloc(blob.nbytes)
        self.stats.counter("blobs_sent").add()
        thread = f"compute-{self.host}"
        trace = self.trace_send(dst, blob)
        first_fail_at = None
        while True:
            attempt_start = self.env.now
            req = yield from self.rt.send_enq(
                dst, tag=0, size=blob.nbytes, payload=blob, thread=thread,
                trace=trace,
            )
            if req is not None:
                break
            if first_fail_at is None:
                first_fail_at = attempt_start
            self.stats.counter("send_retries").add()
            drained = yield from self.rt.recv_deq(thread=thread)
            if drained is not None:
                self._absorb(drained)
                continue
            yield self.env.any_of([
                self.rt.pool.wait_available(),
                self.rt.queue.wait_nonempty(),
            ])
        if self.obs is not None and first_fail_at is not None:
            # Pool recycling held this send up: the stall runs from the
            # first failed SEND-ENQ to the start of the one that stuck.
            self.obs.stall(self.host, "pool_wait", first_fail_at,
                           attempt_start)
        if req.done:
            self.buf_free(blob.nbytes)
        else:
            # The status flag is free to check and Abelian's layer scans
            # its request list continually, so the gather buffer returns
            # to the allocator as soon as the flag flips.
            req.on_complete(lambda _r, n=blob.nbytes: self.buf_free(n))

    def consume(self, blob: UpdateBlob) -> None:
        self.buf_free(blob.nbytes)

    # ------------------------------------------------------------------
    def collect_some(self, phase, pending: set):
        """RECV-DEQ until at least one blob of ``phase`` is complete."""
        thread = f"compute-{self.host}"
        while True:
            # Completed rendezvous receives first (flag scan: free).
            got = self._harvest(phase, pending)
            if got:
                return got
            req = yield from self.rt.recv_deq(thread=thread)
            if req is None:
                # Sleep until either a new packet is enqueued or one of
                # the parked rendezvous receives completes (its data can
                # arrive without anything new entering the queue).
                waits = [self.rt.queue.wait_nonempty()]
                for r in self._pending_recvs:
                    ev = Event(self.env)
                    r.on_complete(
                        lambda _x, e=ev: None if e.triggered else e.succeed(None)
                    )
                    waits.append(ev)
                yield self.env.any_of(waits)
                continue
            self._absorb(req)

    def _absorb(self, req: LciRequest) -> None:
        """File one dequeued receive: stash if done, park if rendezvous."""
        if req.done:
            blob: UpdateBlob = req.payload
            self.buf_alloc(blob.nbytes)
            self._deliver(req.peer, blob)
        else:
            self._pending_recvs.append(req)

    def _harvest(self, phase, pending: set):
        # Move any finished rendezvous receives into the stash.
        if self._pending_recvs:
            still = []
            for req in self._pending_recvs:
                if req.done:
                    blob: UpdateBlob = req.payload
                    self.buf_alloc(blob.nbytes)
                    self._deliver(req.peer, blob)
                else:
                    still.append(req)
            self._pending_recvs = still
        items = self._take_phase(phase)
        got = []
        for src, blob in items:
            if src not in pending:
                raise RuntimeError(
                    f"lci host {self.host}: unexpected blob from {src} "
                    f"in phase {phase!r}"
                )
            pending.discard(src)
            got.append((src, blob))
        return got

    def collect(self, phase, in_peers: Iterable[int]):
        pending = set(in_peers)
        got = []
        while pending:
            got.extend((yield from self.collect_some(phase, pending)))
        return got

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        self.rt.stop_server()
