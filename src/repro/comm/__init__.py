"""The Abelian communication runtime (Fig. 2 of the paper).

Each BSP round's synchronization is a **gather-communicate-scatter**
pattern: compute threads gather updated labels into per-destination
buffers, a communication substrate moves the buffers, and compute threads
scatter arriving buffers into local proxies.

This package provides the pieces:

* :mod:`repro.comm.serialization` — update blobs with minimized metadata
  (bitset vs. index-list, whichever is smaller) and their size/cost
  accounting;
* :mod:`repro.comm.collective` — the BSP round barrier/allreduce used for
  termination detection (identical cost across layers, so it never
  confounds the comparison);
* :mod:`repro.comm.layer_base` — the CommLayer interface and buffer
  footprint accounting (Fig. 5);
* three interchangeable layers:
  :class:`~repro.comm.probe_layer.ProbeCommLayer` (Section III-B),
  :class:`~repro.comm.rma_layer.RmaCommLayer` (Section III-C), and
  :class:`~repro.comm.lci_layer.LciCommLayer` (Section III-D).
"""

from repro.comm.serialization import UpdateBlob, pack_updates, unpack_updates
from repro.comm.collective import SimBarrier, AllReducer
from repro.comm.layer_base import CommLayer, LAYER_NAMES, make_layers
from repro.comm.probe_layer import ProbeCommLayer
from repro.comm.rma_layer import RmaCommLayer
from repro.comm.lci_layer import LciCommLayer

__all__ = [
    "UpdateBlob",
    "pack_updates",
    "unpack_updates",
    "SimBarrier",
    "AllReducer",
    "CommLayer",
    "LAYER_NAMES",
    "make_layers",
    "ProbeCommLayer",
    "RmaCommLayer",
    "LciCommLayer",
]
