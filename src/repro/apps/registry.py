"""Application registry used by the harness and examples."""

from __future__ import annotations

from typing import Callable, Dict

from repro.apps.bfs import Bfs
from repro.apps.cc import ConnectedComponents
from repro.apps.kcore import KCore
from repro.apps.pagerank import PageRank
from repro.apps.sssp import Sssp
from repro.engine.vertex_program import VertexProgram

__all__ = ["APPS", "make_app"]

APPS: Dict[str, Callable[..., VertexProgram]] = {
    "bfs": Bfs,
    "cc": ConnectedComponents,
    "sssp": Sssp,
    "pagerank": PageRank,
    # Extension beyond the paper's four benchmarks (see apps/kcore.py).
    "kcore": KCore,
}


def make_app(name: str, **kwargs) -> VertexProgram:
    """Instantiate one of the paper's four applications by name.

    kwargs pass to the program constructor (e.g. ``source=`` for bfs and
    sssp, ``max_rounds=`` / ``tol=`` for pagerank).
    """
    if name not in APPS:
        raise ValueError(f"unknown app {name!r}; pick from {sorted(APPS)}")
    return APPS[name](**kwargs)
