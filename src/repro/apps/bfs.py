"""Breadth-first search as a data-driven vertex program.

Label = BFS level; operator relaxes ``level[v] = min(level[v],
level[u] + 1)`` along out-edges of active nodes.  Reduce is min;
broadcast installs canonical levels at source mirrors.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

import numpy as np

from repro.engine.vertex_program import ComputeResult, VertexProgram, min_relax
from repro.graph.csr import CsrGraph
from repro.graph.partition.proxies import LocalGraph

__all__ = ["Bfs", "INF"]

#: "Unreached" sentinel; large but addable without overflow.
INF = np.int64(2**62)


class Bfs(VertexProgram):
    """BFS, optionally direction-optimizing.

    ``direction`` selects the traversal mode per round:

    * ``"push"`` — relax out-edges of the active frontier (data-driven;
      work ∝ frontier out-degree);
    * ``"pull"`` — relax edges *into* still-unreached nodes (topology
      side; work ∝ in-degree of the unexplored set);
    * ``"auto"`` — Gemini/Beamer-style switching: pull while the global
      frontier exceeds ``pull_threshold`` of all nodes, push otherwise.
      The engine publishes the globally-agreed frontier size after each
      round's allreduce, so every host picks the same mode.
    """

    name = "bfs"
    reduce_op = "min"

    def __init__(self, source: int = 0, direction: str = "push",
                 pull_threshold: float = 0.05):
        if direction not in ("push", "pull", "auto"):
            raise ValueError(f"unknown direction {direction!r}")
        self.source = source
        self.direction = direction
        self.pull_threshold = pull_threshold

    def init_state(self, lg: LocalGraph, graph: CsrGraph) -> Dict[str, np.ndarray]:
        label = np.full(lg.num_local, INF, dtype=np.int64)
        label[lg.global_ids == self.source] = 0
        self._num_nodes = graph.num_nodes
        return {
            "label": label,
            #: label value when the node was last relaxed (activeness).
            "last": np.full(lg.num_local, INF, dtype=np.int64),
        }

    def initial_active(self, lg: LocalGraph, state) -> np.ndarray:
        return state["label"] < state["last"]

    def _mode(self, state) -> str:
        if self.direction != "auto":
            return self.direction
        frontier = state.get("_global_active")
        if frontier is None:
            return "push"  # round 0: the frontier is one node
        return "pull" if frontier > self.pull_threshold * self._num_nodes else "push"

    def compute(self, lg: LocalGraph, state, active: np.ndarray) -> ComputeResult:
        label = state["label"]
        state["last"][active] = label[active]

        def cand_fn(src_ids, _edge_sel):
            return label[src_ids] + 1

        if self._mode(state) == "push":
            return min_relax(lg, label, active, cand_fn)
        return self._pull(lg, state)

    def _pull(self, lg: LocalGraph, state) -> ComputeResult:
        """Dense round: scan edges whose destination is still unreached.

        Same local edge set, selected by destination instead of source —
        this is what "pull" means under an edge partition: the
        synchronization patterns are unchanged.
        """
        label = state["label"]
        unreached = label[lg.indices] >= INF
        dst = lg.indices[unreached]
        if len(dst) == 0:
            return ComputeResult(np.empty(0, dtype=np.int64), 0, 0)
        src = lg.edge_sources()[unreached]
        cand = label[src] + 1
        before = label[dst]
        np.minimum.at(label, dst, cand)
        changed = dst[label[dst] < before]
        return ComputeResult(
            np.unique(changed), int(len(dst)),
            int(np.count_nonzero(label >= INF)),
        )

    # -- sync hooks ------------------------------------------------------
    def reduce_values(self, state, ids):
        return state["label"][ids]

    def apply_reduce(self, state, ids, values):
        label = state["label"]
        before = label[ids]
        np.minimum.at(label, ids, values)
        return label[ids] < before

    def bcast_values(self, state, ids):
        return state["label"][ids]

    def apply_bcast(self, state, ids, values):
        label = state["label"]
        before = label[ids]
        np.minimum.at(label, ids, values)
        return label[ids] < before

    def next_active(self, lg: LocalGraph, state) -> np.ndarray:
        return state["label"] < state["last"]

    def extract_masters(self, lg: LocalGraph, state) -> np.ndarray:
        return state["label"][: lg.num_masters]

    # -- reference --------------------------------------------------------
    def reference(self, graph: CsrGraph, **kwargs) -> np.ndarray:
        """Sequential BFS levels from ``self.source``."""
        level = np.full(graph.num_nodes, INF, dtype=np.int64)
        level[self.source] = 0
        frontier = deque([self.source])
        while frontier:
            u = frontier.popleft()
            lu = level[u]
            for v in graph.neighbors(u):
                if level[v] > lu + 1:
                    level[v] = lu + 1
                    frontier.append(v)
        return level
