"""PageRank as a topology-driven vertex program with residual cut-off.

Round structure on the partitioned graph:

1. **compute** — every local edge (u, v) accumulates ``contrib[u]`` into
   ``partial[v]`` (vectorized ``np.add.at``), where ``contrib`` is the
   canonical ``rank/out_degree`` installed by the previous broadcast.
2. **reduce (add)** — destination mirrors ship their nonzero partials to
   the masters, which sum them; shipped mirror partials reset to zero.
3. **post_reduce** — masters apply the damping update
   ``rank' = (1-d)/N + d * partial`` and refresh their ``contrib``.
4. **broadcast** — masters with materially changed rank ship the new
   ``contrib`` to their source mirrors.

The paper runs PageRank "up to 100 iterations"; ``max_rounds``
reproduces that cap, and ``tol`` stops earlier once every master's rank
moves less than the tolerance.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.engine.vertex_program import ComputeResult, VertexProgram
from repro.graph.csr import CsrGraph
from repro.graph.partition.proxies import LocalGraph

__all__ = ["PageRank"]


class PageRank(VertexProgram):
    name = "pagerank"
    reduce_op = "add"
    label_is_broadcast_field = False  # compute writes partials, not contrib

    def __init__(self, damping: float = 0.85, max_rounds: int = 100,
                 tol: float = 1e-9):
        self.damping = damping
        self.max_rounds = max_rounds
        self.tol = tol
        self._num_nodes = None

    def init_state(self, lg: LocalGraph, graph: CsrGraph) -> Dict[str, np.ndarray]:
        self._num_nodes = graph.num_nodes
        n = graph.num_nodes
        outdeg = np.diff(graph.indptr)[lg.global_ids].astype(np.float64)
        rank = np.full(lg.num_local, 1.0 / n, dtype=np.float64)
        safe = np.maximum(outdeg, 1.0)
        return {
            "rank": rank,
            "outdeg": outdeg,
            "contrib": np.where(outdeg > 0, rank / safe, 0.0),
            "partial": np.zeros(lg.num_local, dtype=np.float64),
            "active": np.ones(lg.num_local, dtype=bool),
        }

    def initial_active(self, lg: LocalGraph, state) -> np.ndarray:
        return state["active"].copy()

    def compute(self, lg: LocalGraph, state, active: np.ndarray) -> ComputeResult:
        contrib = state["contrib"]
        partial = state["partial"]
        src = lg.edge_sources()
        dst = lg.indices
        if len(dst) == 0:
            return ComputeResult(np.empty(0, dtype=np.int64), 0, lg.num_local)
        # partial is provably all-zero here (masters reset in post_reduce,
        # shipped mirrors in reset_after_reduce_send, and every position
        # the edge scan touches is shipped), so the scatter-add over the
        # static edge list is a bincount — same element order, same
        # float additions, bit-identical result at a fraction of the cost
        # of np.add.at.  The touched-vertex set is static too — the
        # sorted unique values of lg.indices, i.e. the nonzero bins of
        # an integer bincount — computed once and cached.
        partial += np.bincount(dst, weights=contrib[src],
                               minlength=partial.size)
        updated = state.get("_pr_updated")
        if updated is None:
            updated = state["_pr_updated"] = np.flatnonzero(
                np.bincount(dst)
            ).astype(np.int64)
        return ComputeResult(updated, int(len(dst)), int(lg.num_local))

    # -- reduce (add) -----------------------------------------------------
    def reduce_values(self, state, ids):
        return state["partial"][ids]

    def apply_reduce(self, state, ids, values):
        # ids within one blob are unique (np.where output), so the fancy
        # in-place add is exactly np.add.at, without its per-element loop.
        state["partial"][ids] += values
        return np.ones(len(ids), dtype=bool)

    def reset_after_reduce_send(self, state, ids) -> None:
        state["partial"][ids] = 0.0

    def post_reduce(self, lg: LocalGraph, state) -> np.ndarray:
        n = self._num_nodes
        masters = slice(0, lg.num_masters)
        rank = state["rank"]
        partial = state["partial"]
        new_rank = (1.0 - self.damping) / n + self.damping * partial[masters]
        delta = np.abs(new_rank - rank[masters])
        changed = delta > self.tol
        rank[masters] = new_rank
        outdeg = state["outdeg"][masters]
        safe = np.maximum(outdeg, 1.0)
        state["contrib"][masters] = np.where(outdeg > 0, new_rank / safe, 0.0)
        partial[masters] = 0.0
        state["active"][masters] = changed
        return np.where(changed)[0].astype(np.int64)

    # -- broadcast ----------------------------------------------------------
    def bcast_values(self, state, ids):
        return state["contrib"][ids]

    def apply_bcast(self, state, ids, values):
        before = state["contrib"][ids]
        state["contrib"][ids] = values
        return values != before

    def next_active(self, lg: LocalGraph, state) -> np.ndarray:
        # Topology-driven: rounds continue while any master anywhere moved
        # more than tol (the engine sums the quiescence metric globally).
        active = np.zeros(lg.num_local, dtype=bool)
        active[: lg.num_masters] = state["active"][: lg.num_masters]
        # Mirrors of still-moving masters keep contributing; since the
        # compute phase is edge-driven over all local edges, activeness
        # here only steers termination, not work selection.
        return active

    def local_quiescent_metric(self, lg, state, active) -> float:
        return float(np.count_nonzero(active[: lg.num_masters]))

    def extract_masters(self, lg: LocalGraph, state) -> np.ndarray:
        return state["rank"][: lg.num_masters]

    # -- reference ------------------------------------------------------------
    def reference(self, graph: CsrGraph, rounds: int = None, **kwargs) -> np.ndarray:
        """Power iteration with the same damping/round cap/tolerance."""
        n = graph.num_nodes
        rounds = rounds if rounds is not None else self.max_rounds
        rank = np.full(n, 1.0 / n)
        outdeg = np.diff(graph.indptr).astype(np.float64)
        safe = np.maximum(outdeg, 1.0)
        src = graph.edge_sources()
        dst = graph.indices
        for _ in range(rounds):
            contrib = np.where(outdeg > 0, rank / safe, 0.0)
            partial = np.zeros(n)
            np.add.at(partial, dst, contrib[src])
            new_rank = (1.0 - self.damping) / n + self.damping * partial
            if np.max(np.abs(new_rank - rank)) <= self.tol:
                rank = new_rank
                break
            rank = new_rank
        return rank
