"""The paper's four benchmark applications (Section IV):

breadth-first search (:mod:`~repro.apps.bfs`), connected components
(:mod:`~repro.apps.cc`), single-source shortest path
(:mod:`~repro.apps.sssp`), and PageRank (:mod:`~repro.apps.pagerank`).

Each is a :class:`~repro.engine.vertex_program.VertexProgram` with a
single-machine reference implementation for end-to-end verification.
Use :func:`make_app` to instantiate by name.
"""

from repro.apps.bfs import Bfs
from repro.apps.cc import ConnectedComponents
from repro.apps.kcore import KCore
from repro.apps.sssp import Sssp
from repro.apps.pagerank import PageRank
from repro.apps.registry import APPS, make_app

__all__ = [
    "Bfs", "ConnectedComponents", "KCore", "Sssp", "PageRank",
    "APPS", "make_app",
]
