"""k-core decomposition as a data-driven vertex program (extension).

The k-core of a graph is the maximal subgraph in which every node has
degree >= k.  The classic peeling algorithm repeatedly removes nodes of
degree < k; distributed, it becomes a vertex program with a different
flavour from the paper's four benchmarks — an *add*-reduce carrying
removal counts plus a *death flag* broadcast — which exercises the
runtime's generality ("LCI can be used as a communication runtime
plug-in", Section IV-B):

* **compute** — every newly-dead proxy charges one removal to each of
  its local out-neighbours (``np.add.at`` on the removal accumulator);
* **reduce (add)** — destination mirrors ship removal counts to masters;
* **post_reduce** — masters apply the decrements; survivors falling
  below ``k`` die and are queued for propagation;
* **broadcast** — death flags flow to source mirrors so remote edge
  owners relay the removals next round.

Runs on the symmetrized graph (cores are an undirected notion).  The
reference implementation peels sequentially.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.engine.vertex_program import ComputeResult, VertexProgram
from repro.graph.csr import CsrGraph
from repro.graph.partition.proxies import LocalGraph

__all__ = ["KCore"]


class KCore(VertexProgram):
    name = "kcore"
    reduce_op = "add"
    needs_symmetric = True
    label_is_broadcast_field = False  # compute writes removal counts

    def __init__(self, k: int = 3):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def init_state(self, lg: LocalGraph, graph: CsrGraph) -> Dict[str, np.ndarray]:
        degree = np.diff(graph.indptr)[lg.global_ids].astype(np.int64)
        return {
            "degree": degree,
            "alive": np.ones(lg.num_local, dtype=bool),
            #: Dead but its local out-edges not yet charged to neighbours.
            "dead_pending": np.zeros(lg.num_local, dtype=bool),
            "removals": np.zeros(lg.num_local, dtype=np.int64),
        }

    def initial_active(self, lg: LocalGraph, state) -> np.ndarray:
        # Round 0 is a bootstrap: no deaths are pending yet; the first
        # post_reduce kills every master whose initial degree < k.
        return np.zeros(lg.num_local, dtype=bool)

    def compute(self, lg: LocalGraph, state, active: np.ndarray) -> ComputeResult:
        pending = state["dead_pending"]
        srcs_pending = np.where(pending)[0]
        if len(srcs_pending) == 0:
            return ComputeResult(np.empty(0, dtype=np.int64), 0, 0)
        degs = np.diff(lg.indptr)
        edge_sel = np.repeat(pending, degs)
        dst = lg.indices[edge_sel]
        pending[srcs_pending] = False
        if len(dst) == 0:
            return ComputeResult(
                np.empty(0, dtype=np.int64), 0, len(srcs_pending)
            )
        np.add.at(state["removals"], dst, 1)
        return ComputeResult(
            np.unique(dst), int(len(dst)), int(len(srcs_pending))
        )

    # -- reduce (add) ------------------------------------------------------
    def reduce_values(self, state, ids):
        return state["removals"][ids]

    def apply_reduce(self, state, ids, values):
        np.add.at(state["removals"], ids, values.astype(np.int64))
        return np.zeros(len(ids), dtype=bool)

    def reset_after_reduce_send(self, state, ids) -> None:
        state["removals"][ids] = 0

    def post_reduce(self, lg: LocalGraph, state) -> np.ndarray:
        masters = slice(0, lg.num_masters)
        degree = state["degree"]
        alive = state["alive"]
        removals = state["removals"]
        degree[masters] -= removals[masters]
        removals[masters] = 0
        newly_dead = np.where(
            alive[masters] & (degree[masters] < self.k)
        )[0].astype(np.int64)
        alive[newly_dead] = False
        state["dead_pending"][newly_dead] = True
        return newly_dead

    # -- broadcast: death flags -------------------------------------------
    def bcast_values(self, state, ids):
        return state["alive"][ids].astype(np.int64)

    def apply_bcast(self, state, ids, values):
        alive = state["alive"]
        newly = alive[ids] & (values == 0)
        sel = ids[newly]
        alive[sel] = False
        state["dead_pending"][sel] = True
        return newly

    # -- termination ---------------------------------------------------------
    def next_active(self, lg: LocalGraph, state) -> np.ndarray:
        return state["dead_pending"].copy()

    def extract_masters(self, lg: LocalGraph, state) -> np.ndarray:
        return state["alive"][: lg.num_masters].astype(np.int64)

    # -- reference -------------------------------------------------------------
    def reference(self, graph: CsrGraph, **kwargs) -> np.ndarray:
        """Sequential peeling on the (symmetric) graph; 1 = in k-core."""
        degree = np.diff(graph.indptr).astype(np.int64)
        alive = np.ones(graph.num_nodes, dtype=bool)
        frontier = list(np.where(degree < self.k)[0])
        alive[degree < self.k] = False
        while frontier:
            u = frontier.pop()
            for v in graph.neighbors(u):
                if alive[v]:
                    degree[v] -= 1
                    if degree[v] < self.k:
                        alive[v] = False
                        frontier.append(int(v))
        return alive.astype(np.int64)
