"""Single-source shortest path (Bellman-Ford-style data-driven relaxation).

Label = tentative distance; the operator relaxes
``dist[v] = min(dist[v], dist[u] + w(u, v))`` along out-edges of active
nodes.  Requires weighted edges.
"""

from __future__ import annotations

import heapq
from typing import Dict

import numpy as np

from repro.apps.bfs import INF
from repro.engine.vertex_program import ComputeResult, VertexProgram, min_relax
from repro.graph.csr import CsrGraph
from repro.graph.partition.proxies import LocalGraph

__all__ = ["Sssp"]


class Sssp(VertexProgram):
    name = "sssp"
    reduce_op = "min"
    needs_weights = True

    def __init__(self, source: int = 0):
        self.source = source

    def init_state(self, lg: LocalGraph, graph: CsrGraph) -> Dict[str, np.ndarray]:
        if lg.edge_data is None:
            raise ValueError("sssp requires a weighted graph")
        dist = np.full(lg.num_local, INF, dtype=np.int64)
        dist[lg.global_ids == self.source] = 0
        return {
            "label": dist,
            "last": np.full(lg.num_local, INF, dtype=np.int64),
        }

    def initial_active(self, lg: LocalGraph, state) -> np.ndarray:
        return state["label"] < state["last"]

    def compute(self, lg: LocalGraph, state, active: np.ndarray) -> ComputeResult:
        label = state["label"]
        state["last"][active] = label[active]
        weights = lg.edge_data

        def cand_fn(src_ids, edge_sel):
            return label[src_ids] + weights[edge_sel]

        return min_relax(lg, label, active, cand_fn)

    # -- sync hooks (identical shape to BFS: min over an int64 label) ----
    def reduce_values(self, state, ids):
        return state["label"][ids]

    def apply_reduce(self, state, ids, values):
        label = state["label"]
        before = label[ids]
        np.minimum.at(label, ids, values)
        return label[ids] < before

    def bcast_values(self, state, ids):
        return state["label"][ids]

    def apply_bcast(self, state, ids, values):
        label = state["label"]
        before = label[ids]
        np.minimum.at(label, ids, values)
        return label[ids] < before

    def next_active(self, lg: LocalGraph, state) -> np.ndarray:
        return state["label"] < state["last"]

    def extract_masters(self, lg: LocalGraph, state) -> np.ndarray:
        return state["label"][: lg.num_masters]

    # -- reference --------------------------------------------------------
    def reference(self, graph: CsrGraph, **kwargs) -> np.ndarray:
        """Dijkstra from ``self.source`` (non-negative weights)."""
        if graph.edge_data is None:
            raise ValueError("sssp reference requires weights")
        dist = np.full(graph.num_nodes, INF, dtype=np.int64)
        dist[self.source] = 0
        heap = [(0, self.source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            lo, hi = graph.indptr[u], graph.indptr[u + 1]
            for v, w in zip(graph.indices[lo:hi], graph.edge_data[lo:hi]):
                nd = d + int(w)
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist
