"""Connected components by label propagation.

Every node starts with its own id; labels propagate by min along edges
until quiescent.  Components are defined on the *undirected* structure,
so the program requires a symmetrized input (``needs_symmetric`` — the
harness adds reverse edges before partitioning, as Galois and Gemini do
for their cc benchmarks).
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import scipy.sparse as sp

from repro.apps.bfs import INF
from repro.engine.vertex_program import ComputeResult, VertexProgram, min_relax
from repro.graph.csr import CsrGraph
from repro.graph.partition.proxies import LocalGraph

__all__ = ["ConnectedComponents"]


class ConnectedComponents(VertexProgram):
    name = "cc"
    reduce_op = "min"
    needs_symmetric = True

    def init_state(self, lg: LocalGraph, graph: CsrGraph) -> Dict[str, np.ndarray]:
        label = lg.global_ids.astype(np.int64).copy()
        return {
            "label": label,
            "last": np.full(lg.num_local, INF, dtype=np.int64),
        }

    def initial_active(self, lg: LocalGraph, state) -> np.ndarray:
        # Everyone starts active (own label < INF sentinel).
        return state["label"] < state["last"]

    def compute(self, lg: LocalGraph, state, active: np.ndarray) -> ComputeResult:
        label = state["label"]
        state["last"][active] = label[active]

        def cand_fn(src_ids, _edge_sel):
            return label[src_ids]

        return min_relax(lg, label, active, cand_fn)

    # -- sync hooks -------------------------------------------------------
    def reduce_values(self, state, ids):
        return state["label"][ids]

    def apply_reduce(self, state, ids, values):
        label = state["label"]
        before = label[ids]
        np.minimum.at(label, ids, values)
        return label[ids] < before

    def bcast_values(self, state, ids):
        return state["label"][ids]

    def apply_bcast(self, state, ids, values):
        label = state["label"]
        before = label[ids]
        np.minimum.at(label, ids, values)
        return label[ids] < before

    def next_active(self, lg: LocalGraph, state) -> np.ndarray:
        return state["label"] < state["last"]

    def extract_masters(self, lg: LocalGraph, state) -> np.ndarray:
        return state["label"][: lg.num_masters]

    # -- reference ----------------------------------------------------------
    def reference(self, graph: CsrGraph, **kwargs) -> np.ndarray:
        """Components via scipy; labels canonicalized to min node id."""
        n = graph.num_nodes
        src, dst = graph.edges()
        mat = sp.coo_matrix(
            (np.ones(len(src)), (src, dst)), shape=(n, n)
        )
        _ncomp, comp = sp.csgraph.connected_components(
            mat, directed=False, return_labels=True
        )
        # canonical representative = min global id in the component
        reps = np.full(comp.max() + 1, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(reps, comp, np.arange(n, dtype=np.int64))
        return reps[comp]
